//! Dense row-major `f32` matrix with parallel blocked kernels.

use crate::parallel::par_chunks_mut;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Minimum number of output elements before a kernel goes parallel.
const PAR_THRESHOLD: usize = 64 * 64;

/// A dense row-major matrix of `f32`.
///
/// Row-major layout keeps the GNN hot loops (`C[i,:] += A[i,k] * B[k,:]`)
/// sequential in memory; parallelism is over disjoint output-row blocks, so
/// results are bit-identical regardless of thread count.
///
/// ```
/// use largeea_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
/// assert_eq!(a.matmul(&i), a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from an existing buffer (length must be `rows*cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Bytes of the backing buffer — used by the memory accounting that
    /// stands in for the paper's GPU-memory metric.
    #[inline]
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole backing slice, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing slice, row-major.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self @ other` (parallel over output-row blocks).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} @ {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let cols = other.cols;
        let k_dim = self.cols;
        let a = &self.data;
        let b = &other.data;
        par_chunks_mut(&mut out.data, PAR_THRESHOLD, |block, start| {
            let row0 = start / cols;
            let nrows = block.len() / cols;
            for (ri, out_row) in block.chunks_mut(cols).enumerate() {
                let i = row0 + ri;
                debug_assert!(ri < nrows);
                let a_row = &a[i * k_dim..(i + 1) * k_dim];
                for (k, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[k * cols..(k + 1) * cols];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aik * bv;
                    }
                }
            }
        });
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self += other` element-wise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` element-wise (axpy).
    pub fn add_scaled_assign(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every element in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// L2-normalises each row in place: `x ← x / (‖x‖₂ + ε)`.
    ///
    /// Matches the paper's entity-embedding normalisation (ε guards the
    /// all-zero row).
    pub fn l2_normalize_rows(&mut self, eps: f32) {
        let cols = self.cols;
        par_chunks_mut(&mut self.data, PAR_THRESHOLD, |block, _| {
            for row in block.chunks_mut(cols) {
                let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
                let inv = 1.0 / (norm + eps);
                for x in row {
                    *x *= inv;
                }
            }
        });
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Manhattan (L1) distance between row `i` of `self` and row `j` of
    /// `other` — the paper's similarity metric for both channels.
    pub fn manhattan(&self, i: usize, other: &Matrix, j: usize) -> f32 {
        debug_assert_eq!(self.cols, other.cols);
        self.row(i)
            .iter()
            .zip(other.row(j))
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Dot product between row `i` of `self` and row `j` of `other`.
    pub fn row_dot(&self, i: usize, other: &Matrix, j: usize) -> f32 {
        debug_assert_eq!(self.cols, other.cols);
        self.row(i)
            .iter()
            .zip(other.row(j))
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Copies the rows of `self` selected by `indices` into a new matrix.
    pub fn gather_rows(&self, indices: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src as usize));
        }
        out
    }

    /// Vertically stacks `self` on top of `other` (column counts must match).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Horizontally concatenates `self` with `other` (row counts must match).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Maximum absolute element (0 for the empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_parallel_matches_sequential() {
        let a = Matrix::from_fn(130, 70, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(70, 90, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);
        let c = a.matmul(&b);
        // sequential reference
        let mut expect = Matrix::zeros(130, 90);
        for i in 0..130 {
            for k in 0..70 {
                for j in 0..90 {
                    expect[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        assert_eq!(c, expect);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        m(2, 3, &[0.; 6]).matmul(&m(2, 3, &[0.; 6]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut a = m(2, 2, &[3., 4., 0., 0.]);
        a.l2_normalize_rows(1e-12);
        assert!((a.row(0).iter().map(|x| x * x).sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(a.row(1), &[0.0, 0.0]); // eps guards zero rows
    }

    #[test]
    fn manhattan_distance() {
        let a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[2., 0., 3.]);
        assert_eq!(a.manhattan(0, &b, 0), 3.0);
    }

    #[test]
    fn gather_rows_selects() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[5., 6., 1., 2., 5., 6.]);
    }

    #[test]
    fn stack_operations() {
        let a = m(1, 2, &[1., 2.]);
        let b = m(1, 2, &[3., 4.]);
        assert_eq!(a.vstack(&b).as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(a.hstack(&b).as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(a.hstack(&b).shape(), (1, 4));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = m(1, 3, &[1., 1., 1.]);
        let b = m(1, 3, &[1., 2., 3.]);
        a.add_scaled_assign(&b, 2.0);
        assert_eq!(a.as_slice(), &[3., 5., 7.]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn nbytes_tracks_buffer() {
        assert_eq!(Matrix::zeros(10, 10).nbytes(), 400);
    }

    #[test]
    fn from_fn_layout() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.as_slice(), &[0., 1., 2., 10., 11., 12.]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
