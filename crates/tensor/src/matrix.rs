//! Dense row-major `f32` matrix with cache-blocked parallel kernels.

use crate::kernels::{self, Isa};
use crate::parallel::{par_rows_mut, Pool};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Minimum number of output elements before a kernel goes parallel.
const PAR_THRESHOLD: usize = 64 * 64;

/// Depth (k) tile for the packed-panel matmul: a KC×NC panel of B stays
/// resident in L1/L2 while MR rows of A stream against it.
const KC: usize = 128;
/// Column (j) tile for the packed-panel matmul.
const NC: usize = 256;
/// Register rows per micro-kernel call.
const MR: usize = 4;

// The unrolled dot / L1 reductions moved to [`crate::kernels`] (where they
// are the normative scalar reference behind runtime ISA dispatch); the
// historical `largeea_tensor::matrix::{dot, l1_distance}` paths stay valid.
pub use crate::kernels::{dot, l1_distance};

/// A dense row-major matrix of `f32`.
///
/// Row-major layout keeps the GNN hot loops (`C[i,:] += A[i,k] * B[k,:]`)
/// sequential in memory; parallelism is over disjoint output-row blocks, so
/// results are bit-identical regardless of thread count.
///
/// ```
/// use largeea_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
/// assert_eq!(a.matmul(&i), a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from an existing buffer (length must be `rows*cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Bytes of the backing buffer — used by the memory accounting that
    /// stands in for the paper's GPU-memory metric.
    #[inline]
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole backing slice, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing slice, row-major.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self @ other` — cache-blocked and parallel over
    /// output-row blocks on the global pool.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_in(other, Pool::global())
    }

    /// [`Matrix::matmul`] on an explicit pool, so tests can pin the width.
    ///
    /// i-k-j loop order with KC×NC panel blocking: each task packs the
    /// active B panel into contiguous scratch and streams MR rows of A
    /// against it per micro-kernel call. Every output element accumulates
    /// its products strictly in ascending-`k` order — one add per `k` —
    /// so the result is bit-identical to the naive triple loop for any
    /// blocking and any thread count.
    ///
    /// There is deliberately no `a[i,k] == 0.0` skip: the branch defeats
    /// vectorisation of the inner j-loop and loses on dense inputs (see
    /// EXPERIMENTS.md); sparse operands belong in [`crate::SparseMatrix`].
    pub fn matmul_in(&self, other: &Matrix, pool: &Pool) -> Matrix {
        self.matmul_on(other, pool, kernels::active_isa())
    }

    /// [`Matrix::matmul_in`] on an explicit kernel [`Isa`] — the hook
    /// `kernel_bench` and the dispatch tests use to compare instruction
    /// sets. [`Isa::Scalar`] is the normative reference; every ISA is
    /// bit-identical to it by the §S0.11 contract (and falls back to
    /// scalar when the hardware lacks it).
    pub fn matmul_on(&self, other: &Matrix, pool: &Pool, isa: Isa) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} @ {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let m = other.cols;
        let k_dim = self.cols;
        if self.rows == 0 || m == 0 || k_dim == 0 {
            return out;
        }
        let a = &self.data;
        let b = &other.data;
        let min_rows = (PAR_THRESHOLD / m).max(MR);
        pool.rows_mut(&mut out.data, m, min_rows, |block, first_row| {
            matmul_block(a, b, block, first_row, k_dim, m, isa);
        });
        out
    }

    /// Transposed copy — tiled to keep both source and destination
    /// accesses cache-resident (the naive loop does strided column writes),
    /// parallel over output-row bands on the global pool.
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let (rows, cols) = (self.rows, self.cols);
        let mut out = Matrix::zeros(cols, rows);
        if rows == 0 || cols == 0 {
            return out;
        }
        let src = &self.data;
        let min_rows = (PAR_THRESHOLD / rows).max(TILE);
        Pool::global().rows_mut(&mut out.data, rows, min_rows, |block, first_row| {
            // Output rows are source columns `first_row..`; walk the source
            // in TILE-row strips so each strip is read once per ~TILE
            // output rows while it is still cached.
            for i0 in (0..rows).step_by(TILE) {
                let i1 = (i0 + TILE).min(rows);
                for (ci, out_row) in block.chunks_mut(rows).enumerate() {
                    let c = first_row + ci;
                    for (o, i) in out_row[i0..i1].iter_mut().zip(i0..i1) {
                        *o = src[i * cols + c];
                    }
                }
            }
        });
        out
    }

    /// `self += other` element-wise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` element-wise (axpy), via the dispatched
    /// [`kernels::axpy`] — bit-identical on every ISA.
    pub fn add_scaled_assign(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        kernels::axpy(&mut self.data, alpha, &other.data);
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every element in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// L2-normalises each row in place: `x ← x / (‖x‖₂ + ε)`.
    ///
    /// Matches the paper's entity-embedding normalisation (ε guards the
    /// all-zero row).
    pub fn l2_normalize_rows(&mut self, eps: f32) {
        let cols = self.cols;
        if cols == 0 {
            return;
        }
        let min_rows = (PAR_THRESHOLD / cols).max(1);
        par_rows_mut(&mut self.data, cols, min_rows, |block, _| {
            for row in block.chunks_mut(cols) {
                let norm = dot(row, row).sqrt();
                let inv = 1.0 / (norm + eps);
                for x in row {
                    *x *= inv;
                }
            }
        });
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Manhattan (L1) distance between row `i` of `self` and row `j` of
    /// `other` — the paper's similarity metric for both channels.
    /// Unrolled via [`l1_distance`].
    pub fn manhattan(&self, i: usize, other: &Matrix, j: usize) -> f32 {
        debug_assert_eq!(self.cols, other.cols);
        l1_distance(self.row(i), other.row(j))
    }

    /// Dot product between row `i` of `self` and row `j` of `other`.
    /// Unrolled via [`dot`].
    pub fn row_dot(&self, i: usize, other: &Matrix, j: usize) -> f32 {
        debug_assert_eq!(self.cols, other.cols);
        dot(self.row(i), other.row(j))
    }

    /// Copies the rows of `self` selected by `indices` into a new matrix.
    pub fn gather_rows(&self, indices: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src as usize));
        }
        out
    }

    /// Vertically stacks `self` on top of `other` (column counts must match).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Horizontally concatenates `self` with `other` (row counts must match).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Maximum absolute element (0 for the empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

/// Computes `block = A[first_row.., :] @ B` for one row-aligned output
/// block (`block.len()` is a multiple of `m`). See [`Matrix::matmul_in`]
/// for the blocking scheme and the determinism argument; the micro-kernels
/// are `isa`-dispatched but bit-identical across ISAs (§S0.11).
fn matmul_block(
    a: &[f32],
    b: &[f32],
    block: &mut [f32],
    first_row: usize,
    k_dim: usize,
    m: usize,
    isa: Isa,
) {
    let nrows = block.len() / m;
    let mut panel = vec![0.0f32; KC.min(k_dim) * NC.min(m)];
    for kc in (0..k_dim).step_by(KC) {
        let kc_len = KC.min(k_dim - kc);
        for jc in (0..m).step_by(NC) {
            let nc_len = NC.min(m - jc);
            let packed: &[f32] = if nc_len == m {
                // The whole row band of B is already contiguous.
                &b[kc * m..(kc + kc_len) * m]
            } else {
                for (dst, kk) in panel.chunks_mut(nc_len).zip(0..kc_len) {
                    let src = (kc + kk) * m + jc;
                    dst.copy_from_slice(&b[src..src + nc_len]);
                }
                &panel[..kc_len * nc_len]
            };
            let a_strip = |i: usize| &a[i * k_dim + kc..i * k_dim + kc + kc_len];
            let mut r = 0;
            while r + MR <= nrows {
                let rows = &mut block[r * m..(r + MR) * m];
                let (o0, rest) = rows.split_at_mut(m);
                let (o1, rest) = rest.split_at_mut(m);
                let (o2, o3) = rest.split_at_mut(m);
                let i = first_row + r;
                kernels::mk4_on(
                    isa,
                    [a_strip(i), a_strip(i + 1), a_strip(i + 2), a_strip(i + 3)],
                    packed,
                    nc_len,
                    [
                        &mut o0[jc..jc + nc_len],
                        &mut o1[jc..jc + nc_len],
                        &mut o2[jc..jc + nc_len],
                        &mut o3[jc..jc + nc_len],
                    ],
                );
                r += MR;
            }
            while r < nrows {
                let out_row = &mut block[r * m + jc..r * m + jc + nc_len];
                kernels::mk1_on(isa, a_strip(first_row + r), packed, nc_len, out_row);
                r += 1;
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_parallel_matches_sequential() {
        let a = Matrix::from_fn(130, 70, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(70, 90, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);
        let c = a.matmul(&b);
        // sequential reference
        let mut expect = Matrix::zeros(130, 90);
        for i in 0..130 {
            for k in 0..70 {
                for j in 0..90 {
                    expect[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        assert_eq!(c, expect);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        m(2, 3, &[0.; 6]).matmul(&m(2, 3, &[0.; 6]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut a = m(2, 2, &[3., 4., 0., 0.]);
        a.l2_normalize_rows(1e-12);
        assert!((a.row(0).iter().map(|x| x * x).sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(a.row(1), &[0.0, 0.0]); // eps guards zero rows
    }

    #[test]
    fn manhattan_distance() {
        let a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[2., 0., 3.]);
        assert_eq!(a.manhattan(0, &b, 0), 3.0);
    }

    #[test]
    fn gather_rows_selects() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[5., 6., 1., 2., 5., 6.]);
    }

    #[test]
    fn stack_operations() {
        let a = m(1, 2, &[1., 2.]);
        let b = m(1, 2, &[3., 4.]);
        assert_eq!(a.vstack(&b).as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(a.hstack(&b).as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(a.hstack(&b).shape(), (1, 4));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = m(1, 3, &[1., 1., 1.]);
        let b = m(1, 3, &[1., 2., 3.]);
        a.add_scaled_assign(&b, 2.0);
        assert_eq!(a.as_slice(), &[3., 5., 7.]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn nbytes_tracks_buffer() {
        assert_eq!(Matrix::zeros(10, 10).nbytes(), 400);
    }

    #[test]
    fn from_fn_layout() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.as_slice(), &[0., 1., 2., 10., 11., 12.]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn matmul_bit_identical_across_isas() {
        // Shapes straddle the KC/NC panel edges and the MR row remainder so
        // both micro-kernels and their vector tails are exercised.
        let pool = Pool::new(2);
        for (n, k, m) in [(9, 5, 7), (130, 129, 257), (67, 128, 31)] {
            let a = Matrix::from_fn(n, k, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
            let b = Matrix::from_fn(k, m, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);
            let reference = a.matmul_on(&b, &pool, Isa::Scalar);
            for isa in [Isa::Avx2, Isa::Neon] {
                if !isa.available() {
                    continue;
                }
                let got = a.matmul_on(&b, &pool, isa);
                assert_eq!(got, reference, "{} {n}x{k}x{m}", isa.name());
            }
            assert_eq!(a.matmul_in(&b, &pool), reference, "dispatched path");
        }
    }
}
