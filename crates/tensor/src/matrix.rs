//! Dense row-major `f32` matrix with cache-blocked parallel kernels.

use crate::parallel::{par_rows_mut, Pool};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Minimum number of output elements before a kernel goes parallel.
const PAR_THRESHOLD: usize = 64 * 64;

/// Depth (k) tile for the packed-panel matmul: a KC×NC panel of B stays
/// resident in L1/L2 while MR rows of A stream against it.
const KC: usize = 128;
/// Column (j) tile for the packed-panel matmul.
const NC: usize = 256;
/// Register rows per micro-kernel call.
const MR: usize = 4;

/// Unrolled L1 (Manhattan) distance between two slices, truncated to the
/// shorter length.
///
/// A plain `zip().map().sum()` is a strict sequential FP reduction the
/// compiler may not reassociate, so it never vectorises; eight independent
/// accumulators recover SIMD throughput. The accumulator split and the
/// pairwise combine are fixed functions of the slice length — never of
/// thread count or chunking — so the result is deterministic.
pub fn l1_distance(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for j in 0..8 {
            acc[j] += (xa[j] - xb[j]).abs();
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += (x - y).abs();
    }
    (((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))) + tail
}

/// Unrolled dot product between two slices, truncated to the shorter
/// length. Same eight-accumulator scheme (and determinism argument) as
/// [`l1_distance`].
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for j in 0..8 {
            acc[j] += xa[j] * xb[j];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))) + tail
}

/// A dense row-major matrix of `f32`.
///
/// Row-major layout keeps the GNN hot loops (`C[i,:] += A[i,k] * B[k,:]`)
/// sequential in memory; parallelism is over disjoint output-row blocks, so
/// results are bit-identical regardless of thread count.
///
/// ```
/// use largeea_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
/// assert_eq!(a.matmul(&i), a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from an existing buffer (length must be `rows*cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Bytes of the backing buffer — used by the memory accounting that
    /// stands in for the paper's GPU-memory metric.
    #[inline]
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole backing slice, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing slice, row-major.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self @ other` — cache-blocked and parallel over
    /// output-row blocks on the global pool.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_in(other, Pool::global())
    }

    /// [`Matrix::matmul`] on an explicit pool, so tests can pin the width.
    ///
    /// i-k-j loop order with KC×NC panel blocking: each task packs the
    /// active B panel into contiguous scratch and streams MR rows of A
    /// against it per micro-kernel call. Every output element accumulates
    /// its products strictly in ascending-`k` order — one add per `k` —
    /// so the result is bit-identical to the naive triple loop for any
    /// blocking and any thread count.
    ///
    /// There is deliberately no `a[i,k] == 0.0` skip: the branch defeats
    /// vectorisation of the inner j-loop and loses on dense inputs (see
    /// EXPERIMENTS.md); sparse operands belong in [`crate::SparseMatrix`].
    pub fn matmul_in(&self, other: &Matrix, pool: &Pool) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} @ {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let m = other.cols;
        let k_dim = self.cols;
        if self.rows == 0 || m == 0 || k_dim == 0 {
            return out;
        }
        let a = &self.data;
        let b = &other.data;
        let min_rows = (PAR_THRESHOLD / m).max(MR);
        pool.rows_mut(&mut out.data, m, min_rows, |block, first_row| {
            matmul_block(a, b, block, first_row, k_dim, m);
        });
        out
    }

    /// Transposed copy — tiled to keep both source and destination
    /// accesses cache-resident (the naive loop does strided column writes),
    /// parallel over output-row bands on the global pool.
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let (rows, cols) = (self.rows, self.cols);
        let mut out = Matrix::zeros(cols, rows);
        if rows == 0 || cols == 0 {
            return out;
        }
        let src = &self.data;
        let min_rows = (PAR_THRESHOLD / rows).max(TILE);
        Pool::global().rows_mut(&mut out.data, rows, min_rows, |block, first_row| {
            // Output rows are source columns `first_row..`; walk the source
            // in TILE-row strips so each strip is read once per ~TILE
            // output rows while it is still cached.
            for i0 in (0..rows).step_by(TILE) {
                let i1 = (i0 + TILE).min(rows);
                for (ci, out_row) in block.chunks_mut(rows).enumerate() {
                    let c = first_row + ci;
                    for (o, i) in out_row[i0..i1].iter_mut().zip(i0..i1) {
                        *o = src[i * cols + c];
                    }
                }
            }
        });
        out
    }

    /// `self += other` element-wise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` element-wise (axpy).
    pub fn add_scaled_assign(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every element in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// L2-normalises each row in place: `x ← x / (‖x‖₂ + ε)`.
    ///
    /// Matches the paper's entity-embedding normalisation (ε guards the
    /// all-zero row).
    pub fn l2_normalize_rows(&mut self, eps: f32) {
        let cols = self.cols;
        if cols == 0 {
            return;
        }
        let min_rows = (PAR_THRESHOLD / cols).max(1);
        par_rows_mut(&mut self.data, cols, min_rows, |block, _| {
            for row in block.chunks_mut(cols) {
                let norm = dot(row, row).sqrt();
                let inv = 1.0 / (norm + eps);
                for x in row {
                    *x *= inv;
                }
            }
        });
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Manhattan (L1) distance between row `i` of `self` and row `j` of
    /// `other` — the paper's similarity metric for both channels.
    /// Unrolled via [`l1_distance`].
    pub fn manhattan(&self, i: usize, other: &Matrix, j: usize) -> f32 {
        debug_assert_eq!(self.cols, other.cols);
        l1_distance(self.row(i), other.row(j))
    }

    /// Dot product between row `i` of `self` and row `j` of `other`.
    /// Unrolled via [`dot`].
    pub fn row_dot(&self, i: usize, other: &Matrix, j: usize) -> f32 {
        debug_assert_eq!(self.cols, other.cols);
        dot(self.row(i), other.row(j))
    }

    /// Copies the rows of `self` selected by `indices` into a new matrix.
    pub fn gather_rows(&self, indices: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src as usize));
        }
        out
    }

    /// Vertically stacks `self` on top of `other` (column counts must match).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Horizontally concatenates `self` with `other` (row counts must match).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Maximum absolute element (0 for the empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

/// Computes `block = A[first_row.., :] @ B` for one row-aligned output
/// block (`block.len()` is a multiple of `m`). See [`Matrix::matmul_in`]
/// for the blocking scheme and the determinism argument.
fn matmul_block(a: &[f32], b: &[f32], block: &mut [f32], first_row: usize, k_dim: usize, m: usize) {
    let nrows = block.len() / m;
    let mut panel = vec![0.0f32; KC.min(k_dim) * NC.min(m)];
    for kc in (0..k_dim).step_by(KC) {
        let kc_len = KC.min(k_dim - kc);
        for jc in (0..m).step_by(NC) {
            let nc_len = NC.min(m - jc);
            let packed: &[f32] = if nc_len == m {
                // The whole row band of B is already contiguous.
                &b[kc * m..(kc + kc_len) * m]
            } else {
                for (dst, kk) in panel.chunks_mut(nc_len).zip(0..kc_len) {
                    let src = (kc + kk) * m + jc;
                    dst.copy_from_slice(&b[src..src + nc_len]);
                }
                &panel[..kc_len * nc_len]
            };
            let a_strip = |i: usize| &a[i * k_dim + kc..i * k_dim + kc + kc_len];
            let mut r = 0;
            while r + MR <= nrows {
                let rows = &mut block[r * m..(r + MR) * m];
                let (o0, rest) = rows.split_at_mut(m);
                let (o1, rest) = rest.split_at_mut(m);
                let (o2, o3) = rest.split_at_mut(m);
                let i = first_row + r;
                kernel4(
                    [a_strip(i), a_strip(i + 1), a_strip(i + 2), a_strip(i + 3)],
                    packed,
                    nc_len,
                    [
                        &mut o0[jc..jc + nc_len],
                        &mut o1[jc..jc + nc_len],
                        &mut o2[jc..jc + nc_len],
                        &mut o3[jc..jc + nc_len],
                    ],
                );
                r += MR;
            }
            while r < nrows {
                let out_row = &mut block[r * m + jc..r * m + jc + nc_len];
                kernel1(a_strip(first_row + r), packed, nc_len, out_row);
                r += 1;
            }
        }
    }
}

/// MR=4 register micro-kernel: four A rows against one packed B panel.
/// The output sub-rows are pre-sliced to exactly `nc_len`, so every index
/// below is provably in bounds and the j-loop vectorises.
#[inline]
fn kernel4(a: [&[f32]; MR], packed: &[f32], nc_len: usize, o: [&mut [f32]; MR]) {
    let [a0, a1, a2, a3] = a;
    let [o0, o1, o2, o3] = o;
    for (kk, ((&x0, &x1), (&x2, &x3))) in a0.iter().zip(a1).zip(a2.iter().zip(a3)).enumerate() {
        let brow = &packed[kk * nc_len..(kk + 1) * nc_len];
        for (((c0, c1), (c2, c3)), &bv) in o0
            .iter_mut()
            .zip(o1.iter_mut())
            .zip(o2.iter_mut().zip(o3.iter_mut()))
            .zip(brow)
        {
            *c0 += x0 * bv;
            *c1 += x1 * bv;
            *c2 += x2 * bv;
            *c3 += x3 * bv;
        }
    }
}

/// Single-row remainder micro-kernel.
#[inline]
fn kernel1(a_row: &[f32], packed: &[f32], nc_len: usize, out_row: &mut [f32]) {
    for (kk, &x) in a_row.iter().enumerate() {
        let brow = &packed[kk * nc_len..(kk + 1) * nc_len];
        for (o, &bv) in out_row.iter_mut().zip(brow) {
            *o += x * bv;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_parallel_matches_sequential() {
        let a = Matrix::from_fn(130, 70, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(70, 90, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);
        let c = a.matmul(&b);
        // sequential reference
        let mut expect = Matrix::zeros(130, 90);
        for i in 0..130 {
            for k in 0..70 {
                for j in 0..90 {
                    expect[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        assert_eq!(c, expect);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        m(2, 3, &[0.; 6]).matmul(&m(2, 3, &[0.; 6]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut a = m(2, 2, &[3., 4., 0., 0.]);
        a.l2_normalize_rows(1e-12);
        assert!((a.row(0).iter().map(|x| x * x).sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(a.row(1), &[0.0, 0.0]); // eps guards zero rows
    }

    #[test]
    fn manhattan_distance() {
        let a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[2., 0., 3.]);
        assert_eq!(a.manhattan(0, &b, 0), 3.0);
    }

    #[test]
    fn gather_rows_selects() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[5., 6., 1., 2., 5., 6.]);
    }

    #[test]
    fn stack_operations() {
        let a = m(1, 2, &[1., 2.]);
        let b = m(1, 2, &[3., 4.]);
        assert_eq!(a.vstack(&b).as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(a.hstack(&b).as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(a.hstack(&b).shape(), (1, 4));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = m(1, 3, &[1., 1., 1.]);
        let b = m(1, 3, &[1., 2., 3.]);
        a.add_scaled_assign(&b, 2.0);
        assert_eq!(a.as_slice(), &[3., 5., 7.]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn nbytes_tracks_buffer() {
        assert_eq!(Matrix::zeros(10, 10).nbytes(), 400);
    }

    #[test]
    fn from_fn_layout() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.as_slice(), &[0., 1., 2., 10., 11., 12.]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
