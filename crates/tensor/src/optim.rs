//! Optimisers over a [`ParamStore`].
//!
//! Parameters persist across optimisation steps while the autograd tape is
//! rebuilt each step (define-by-run). The store owns the parameter matrices;
//! the model loads them onto a fresh [`Tape`] every step, runs backward, and
//! hands the gradients back to the optimiser.
//!
//! [`Tape`]: crate::autograd::Tape

use crate::matrix::Matrix;

/// Named, indexable collection of learnable parameter matrices.
#[derive(Debug, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Matrix>,
}

/// Handle to one parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(usize);

impl ParamId {
    /// The parameter's dense registration index — valid as a direct slot
    /// into per-parameter arrays sized by [`ParamStore::len`].
    pub fn index(self) -> usize {
        self.0
    }
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Read access to a parameter's current value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable access (used by optimisers and tests).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// The parameter's registered name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store has no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates all parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Total bytes of all parameters (memory accounting).
    pub fn nbytes(&self) -> usize {
        self.values.iter().map(Matrix::nbytes).sum()
    }
}

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate α.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability term ε.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// The Adam optimiser (Kingma & Ba) — the paper optimises every EA model
/// with Adam for 100 epochs per mini-batch.
#[derive(Debug)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: i32,
}

impl Adam {
    /// Creates Adam state matching the shapes in `store`.
    pub fn new(cfg: AdamConfig, store: &ParamStore) -> Self {
        let m = store
            .ids()
            .map(|id| Matrix::zeros(store.get(id).rows(), store.get(id).cols()))
            .collect::<Vec<_>>();
        let v = m.clone();
        Self { cfg, m, v, t: 0 }
    }

    /// Applies one update step. `grads[i]` must correspond to the `i`-th
    /// registered parameter and may be `None` for parameters untouched this
    /// step (their moments still decay, matching reference implementations).
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Option<Matrix>]) {
        assert_eq!(grads.len(), store.len(), "one grad slot per parameter");
        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t);
        for (i, id) in store.ids().enumerate() {
            let Some(g) = &grads[i] else { continue };
            let p = store.get_mut(id);
            assert_eq!(p.shape(), g.shape(), "grad shape mismatch for param {i}");
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for (((pv, gv), mv), vv) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
            {
                *mv = self.cfg.beta1 * *mv + (1.0 - self.cfg.beta1) * gv;
                *vv = self.cfg.beta2 * *vv + (1.0 - self.cfg.beta2) * gv * gv;
                let mhat = *mv / b1t;
                let vhat = *vv / b2t;
                *pv -= self.cfg.lr * mhat / (vhat.sqrt() + self.cfg.eps);
            }
        }
    }

    /// Bytes of optimiser state (memory accounting).
    pub fn nbytes(&self) -> usize {
        self.m.iter().chain(&self.v).map(Matrix::nbytes).sum()
    }
}

/// Plain stochastic gradient descent, for tests and ablations.
#[derive(Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Applies one SGD step.
    pub fn step(&self, store: &mut ParamStore, grads: &[Option<Matrix>]) {
        assert_eq!(grads.len(), store.len(), "one grad slot per parameter");
        for (i, id) in store.ids().enumerate() {
            if let Some(g) = &grads[i] {
                store.get_mut(id).add_scaled_assign(g, -self.lr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Tape;

    /// Minimises f(x) = ||x - target||² and checks convergence.
    fn quadratic_descent(
        mut optimise: impl FnMut(&mut ParamStore, &[Option<Matrix>], usize),
    ) -> f32 {
        let target = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let mut store = ParamStore::new();
        let id = store.register("x", Matrix::zeros(1, 3));
        for step in 0..400 {
            let mut tape = Tape::new();
            let x = tape.param(store.get(id).clone());
            let t = tape.constant(target.clone());
            let d = tape.sub(x, t);
            let sq = tape.mul_elem(d, d);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            let g = tape.grad(x).unwrap().clone();
            optimise(&mut store, &[Some(g)], step);
        }
        store.get(id).sub(&target).frobenius()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam: Option<Adam> = None;
        let err = quadratic_descent(|store, grads, _| {
            let a = adam.get_or_insert_with(|| {
                Adam::new(
                    AdamConfig {
                        lr: 0.05,
                        ..Default::default()
                    },
                    store,
                )
            });
            a.step(store, grads);
        });
        assert!(err < 1e-2, "adam residual {err}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let sgd = Sgd { lr: 0.1 };
        let err = quadratic_descent(|store, grads, _| sgd.step(store, grads));
        assert!(err < 1e-3, "sgd residual {err}");
    }

    #[test]
    fn adam_skips_missing_grads() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::from_vec(1, 1, vec![5.0]));
        let mut adam = Adam::new(AdamConfig::default(), &store);
        adam.step(&mut store, &[None]);
        assert_eq!(store.get(id)[(0, 0)], 5.0);
    }

    #[test]
    #[should_panic(expected = "one grad slot per parameter")]
    fn adam_checks_grad_count() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::zeros(1, 1));
        let mut adam = Adam::new(AdamConfig::default(), &store);
        adam.step(&mut store, &[]);
    }

    #[test]
    fn store_bookkeeping() {
        let mut store = ParamStore::new();
        assert!(store.is_empty());
        let id = store.register("emb", Matrix::zeros(10, 4));
        assert_eq!(store.len(), 1);
        assert_eq!(store.name(id), "emb");
        assert_eq!(store.nbytes(), 160);
    }
}
