//! Parallel helpers for blocked kernels, backed by the persistent
//! [`Pool`] in `largeea-common` (DESIGN.md §S0.6).
//!
//! The hot kernels (matmul, SpMM, top-k search) split work by output-row
//! blocks. Blocks are disjoint and results are collected in block order,
//! so output is deterministic regardless of thread count. Work runs on the
//! process-wide [`Pool::global`] — long-lived workers, no per-call thread
//! spawn. Kernels that need an explicit width (determinism tests) take a
//! `&Pool` via their `*_in` variants instead of racing on the env var.

pub use largeea_common::pool::Pool;

/// Number of worker threads the global kernel pool runs on.
///
/// Resolution order (fixed at first use, when the global pool is built):
/// `LARGEEA_THREADS` env var (if a positive integer), then
/// `std::thread::available_parallelism()`, then 1. Code that needs a
/// *different* width must construct its own [`Pool`] — see
/// [`largeea_common::pool::Pool::new`].
pub fn num_threads() -> usize {
    Pool::global().threads()
}

/// Applies `f` to contiguous chunks of `data` in parallel on the global
/// pool. `f` receives the chunk and the index of its first element.
///
/// Falls back to a single sequential call for inputs below `min_len`.
/// Chunk boundaries are arbitrary — use [`par_rows_mut`] when chunks must
/// align to logical rows.
pub fn par_chunks_mut<T: Send>(data: &mut [T], min_len: usize, f: impl Fn(&mut [T], usize) + Sync) {
    Pool::global().rows_mut(data, 1, min_len, f);
}

/// Row-aligned variant of [`par_chunks_mut`]: treats `data` as rows of
/// `row_len` elements, hands `f` chunks that are exact row multiples plus
/// the index of the chunk's first **row**. Kernels whose closures do
/// `block.chunks_mut(row_len)` must use this — element-aligned splitting
/// would silently shear rows at chunk boundaries on multi-core hosts.
pub fn par_rows_mut<T: Send>(
    data: &mut [T],
    row_len: usize,
    min_rows: usize,
    f: impl Fn(&mut [T], usize) + Sync,
) {
    Pool::global().rows_mut(data, row_len, min_rows, f);
}

/// Parallel map over index ranges on the global pool: splits `0..n` into
/// blocks of at least `min_len`, runs `f(range)` on each, and returns the
/// per-block results in block order.
pub fn par_map_blocks<R: Send>(
    n: usize,
    min_len: usize,
    f: impl Fn(std::ops::Range<usize>) -> R + Sync,
) -> Vec<R> {
    Pool::global().map_blocks(n, min_len, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_chunks_mut_touches_every_element() {
        let mut v = vec![0u64; 10_000];
        par_chunks_mut(&mut v, 16, |chunk, start| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (start + i) as u64;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn par_chunks_mut_small_input_sequential() {
        let mut v = vec![1, 2, 3];
        par_chunks_mut(&mut v, 1000, |chunk, start| {
            assert_eq!(start, 0);
            assert_eq!(chunk.len(), 3);
        });
    }

    #[test]
    fn par_rows_mut_never_shears_rows() {
        let cols = 13;
        let mut v = vec![0u64; 101 * cols];
        par_rows_mut(&mut v, cols, 4, |block, first_row| {
            assert_eq!(block.len() % cols, 0);
            for (r, row) in block.chunks_mut(cols).enumerate() {
                row.fill((first_row + r) as u64);
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / cols) as u64);
        }
    }

    #[test]
    fn par_map_blocks_covers_range() {
        let blocks = par_map_blocks(1000, 1, |r| r.len());
        assert_eq!(blocks.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn par_map_blocks_empty() {
        let blocks = par_map_blocks(0, 1, |_| 1usize);
        assert!(blocks.is_empty());
    }

    #[test]
    fn par_map_blocks_preserves_block_order() {
        let blocks = par_map_blocks(100, 1, |r| r.start);
        let mut sorted = blocks.clone();
        sorted.sort_unstable();
        assert_eq!(blocks, sorted);
    }

    #[test]
    fn explicit_pools_give_identical_results() {
        let p1 = Pool::new(1);
        let p4 = Pool::new(4);
        let run = |p: &Pool| {
            let mut v = vec![0u32; 5000];
            p.rows_mut(&mut v, 10, 8, |block, first_row| {
                for (r, row) in block.chunks_mut(10).enumerate() {
                    for (j, x) in row.iter_mut().enumerate() {
                        *x = ((first_row + r) * 31 + j) as u32;
                    }
                }
            });
            v
        };
        assert_eq!(run(&p1), run(&p4));
    }
}
