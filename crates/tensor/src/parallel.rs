//! Scoped-thread parallel helpers for blocked kernels.
//!
//! The hot kernels (matmul, spmm, top-k search) split work by output-row
//! blocks. Blocks are disjoint, so plain `std::thread::scope` suffices — no
//! work stealing, no unsafe, deterministic output regardless of thread
//! count. Thread count comes from `LARGEEA_THREADS` or the machine's
//! available parallelism.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for blocked kernels.
///
/// Resolution order: `LARGEEA_THREADS` env var (if a positive integer), then
/// `std::thread::available_parallelism()`, then 1.
pub fn num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("LARGEEA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Applies `f` to each chunk of `data` (split into at most [`num_threads`]
/// contiguous chunks) in parallel. `f` receives the chunk and the index of
/// its first element.
///
/// Falls back to a sequential call for small inputs (below `min_len`) to
/// avoid thread-spawn overhead dominating.
pub fn par_chunks_mut<T: Send>(data: &mut [T], min_len: usize, f: impl Fn(&mut [T], usize) + Sync) {
    let threads = num_threads();
    if threads <= 1 || data.len() < min_len {
        f(data, 0);
        return;
    }
    let chunk = data.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (i, block) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || f(block, i * chunk));
        }
    });
}

/// Parallel map over index ranges: splits `0..n` into blocks, runs `f(range)`
/// on each, and returns the per-block results in block order.
pub fn par_map_blocks<R: Send>(
    n: usize,
    min_len: usize,
    f: impl Fn(std::ops::Range<usize>) -> R + Sync,
) -> Vec<R> {
    let threads = num_threads();
    if threads <= 1 || n < min_len {
        if n == 0 {
            return Vec::new();
        }
        return vec![f(0..n)];
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<_> = (0..n)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(n))
        .collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                s.spawn(move || f(r))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_chunks_mut_touches_every_element() {
        let mut v = vec![0u64; 10_000];
        par_chunks_mut(&mut v, 16, |chunk, start| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (start + i) as u64;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn par_chunks_mut_small_input_sequential() {
        let mut v = vec![1, 2, 3];
        par_chunks_mut(&mut v, 1000, |chunk, start| {
            assert_eq!(start, 0);
            assert_eq!(chunk.len(), 3);
        });
    }

    #[test]
    fn par_map_blocks_covers_range() {
        let blocks = par_map_blocks(1000, 1, |r| r.len());
        assert_eq!(blocks.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn par_map_blocks_empty() {
        let blocks = par_map_blocks(0, 1, |_| 1usize);
        assert!(blocks.is_empty());
    }

    #[test]
    fn par_map_blocks_preserves_block_order() {
        let blocks = par_map_blocks(100, 1, |r| r.start);
        let mut sorted = blocks.clone();
        sorted.sort_unstable();
        assert_eq!(blocks, sorted);
    }
}
