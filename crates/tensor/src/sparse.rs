//! CSR sparse matrix — the GNN propagation primitive.

use crate::matrix::Matrix;
use crate::parallel::Pool;

/// A compressed-sparse-row matrix of `f32`.
///
/// Built once per mini-batch from the KG adjacency (COO triplets, duplicates
/// summed) and then used read-only inside the training loop, so construction
/// favours clarity and `spmm` favours speed.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Builds from COO triplets `(row, col, value)`. Duplicate coordinates
    /// are summed (the standard convention; parallel KG edges accumulate).
    pub fn from_coo(rows: usize, cols: usize, mut coo: Vec<(u32, u32, f32)>) -> Self {
        coo.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(coo.len());
        let mut values: Vec<f32> = Vec::with_capacity(coo.len());
        let mut last: Option<(u32, u32)> = None;
        for (r, c, v) in coo {
            assert!((r as usize) < rows, "row {r} out of range 0..{rows}");
            assert!((c as usize) < cols, "col {c} out of range 0..{cols}");
            if last == Some((r, c)) {
                *values.last_mut().expect("non-empty after first push") += v;
            } else {
                indptr[r as usize + 1] += 1;
                indices.push(c);
                values.push(v);
                last = Some((r, c));
            }
        }
        for i in 0..rows {
            indptr[i + 1] += indptr[i];
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Bytes of the backing buffers (memory accounting).
    pub fn nbytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f32>()
    }

    /// `(col, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let range = self.indptr[r]..self.indptr[r + 1];
        self.indices[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Sum of each row, as a length-`rows` vector.
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> SparseMatrix {
        let mut coo = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                coo.push((c, r as u32, v));
            }
        }
        SparseMatrix::from_coo(self.cols, self.rows, coo)
    }

    /// Symmetric GCN normalisation `D^{-1/2} (A + I) D^{-1/2}` where `A` is
    /// `self` (must be square). Rows/cols with zero degree stay zero apart
    /// from the self-loop, which keeps isolated entities stable under
    /// propagation.
    pub fn gcn_normalized(&self) -> SparseMatrix {
        assert_eq!(self.rows, self.cols, "gcn_normalized requires square");
        let n = self.rows;
        let mut coo: Vec<(u32, u32, f32)> = Vec::with_capacity(self.nnz() + n);
        for r in 0..n {
            for (c, v) in self.row(r) {
                coo.push((r as u32, c, v));
            }
            coo.push((r as u32, r as u32, 1.0)); // self-loop
        }
        let with_loops = SparseMatrix::from_coo(n, n, coo);
        let deg = with_loops.row_sums();
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut out = with_loops;
        for r in 0..n {
            let range = out.indptr[r]..out.indptr[r + 1];
            for k in range {
                let c = out.indices[k] as usize;
                out.values[k] *= inv_sqrt[r] * inv_sqrt[c];
            }
        }
        out
    }

    /// Row-stochastic normalisation `D^{-1} A` (mean aggregation).
    pub fn row_normalized(&self) -> SparseMatrix {
        let sums = self.row_sums();
        let mut out = self.clone();
        for (r, &s) in sums.iter().enumerate() {
            if s == 0.0 {
                continue;
            }
            let inv = 1.0 / s;
            for k in out.indptr[r]..out.indptr[r + 1] {
                out.values[k] *= inv;
            }
        }
        out
    }

    /// Sparse × dense product `self @ dense` (parallel over output-row
    /// blocks on the global pool).
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        self.spmm_in(dense, Pool::global())
    }

    /// [`SparseMatrix::spmm`] on an explicit pool, so tests can pin the
    /// width. Output rows are disjoint per task and each row accumulates
    /// its non-zeros in CSR (ascending-column) order, so results are
    /// bit-identical for any thread count.
    pub fn spmm_in(&self, dense: &Matrix, pool: &Pool) -> Matrix {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm shape mismatch: {}x{} @ {:?}",
            self.rows,
            self.cols,
            dense.shape()
        );
        let cols = dense.cols();
        let mut out = Matrix::zeros(self.rows, cols);
        if cols == 0 {
            return out;
        }
        let indptr = &self.indptr;
        let indices = &self.indices;
        let values = &self.values;
        let min_rows = ((64 * 64) / cols).max(1);
        pool.rows_mut(out.as_mut_slice(), cols, min_rows, |block, first_row| {
            for (ri, out_row) in block.chunks_mut(cols).enumerate() {
                let r = first_row + ri;
                for k in indptr[r]..indptr[r + 1] {
                    let c = indices[k] as usize;
                    let v = values[k];
                    let src = dense.row(c);
                    for (o, &s) in out_row.iter_mut().zip(src) {
                        *o += v * s;
                    }
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        SparseMatrix::from_coo(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        )
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let m = SparseMatrix::from_coo(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 1.0)]);
        assert_eq!(m.nnz(), 2);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 3.0)]);
    }

    #[test]
    fn spmm_matches_dense() {
        let s = sample();
        let d = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 + 1.0);
        let out = s.spmm(&d);
        // dense equivalent
        let dense = Matrix::from_fn(3, 3, |r, c| {
            s.row(r)
                .find(|&(cc, _)| cc as usize == c)
                .map_or(0.0, |(_, v)| v)
        });
        assert_eq!(out, dense.matmul(&d));
    }

    #[test]
    fn spmm_empty_row_is_zero() {
        let s = sample();
        let d = Matrix::from_fn(3, 2, |_, _| 1.0);
        let out = s.spmm(&d);
        assert_eq!(out.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let s = sample();
        assert_eq!(s.transpose().transpose(), s);
        let t = s.transpose();
        let row0: Vec<_> = t.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 3.0)]);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let i = SparseMatrix::identity(3);
        let d = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        assert_eq!(i.spmm(&d), d);
    }

    #[test]
    fn gcn_normalized_rows_of_regular_graph() {
        // path graph 0-1-2 (symmetric)
        let a = SparseMatrix::from_coo(
            3,
            3,
            vec![(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
        );
        let n = a.gcn_normalized();
        // degree+1: [2,3,2]; check diagonal entries
        let d0: f32 = n.row(0).find(|&(c, _)| c == 0).unwrap().1;
        assert!((d0 - 0.5).abs() < 1e-6);
        let d1: f32 = n.row(1).find(|&(c, _)| c == 1).unwrap().1;
        assert!((d1 - 1.0 / 3.0).abs() < 1e-6);
        // symmetry: entry (0,1) equals entry (1,0) = 1/sqrt(2*3)
        let e01: f32 = n.row(0).find(|&(c, _)| c == 1).unwrap().1;
        let e10: f32 = n.row(1).find(|&(c, _)| c == 0).unwrap().1;
        assert!((e01 - e10).abs() < 1e-6);
        assert!((e01 - 1.0 / 6.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn gcn_normalized_isolated_vertex() {
        let a = SparseMatrix::from_coo(2, 2, vec![(0, 0, 0.0)]);
        let n = a.gcn_normalized();
        // isolated vertex keeps a unit self-loop
        let d1: f32 = n.row(1).find(|&(c, _)| c == 1).unwrap().1;
        assert!((d1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn row_normalized_is_stochastic() {
        let s = sample();
        let n = s.row_normalized();
        let sums = n.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-6);
        assert_eq!(sums[1], 0.0); // empty row left untouched
        assert!((sums[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_coo_validates_bounds() {
        SparseMatrix::from_coo(2, 2, vec![(5, 0, 1.0)]);
    }

    #[test]
    fn nbytes_positive() {
        assert!(sample().nbytes() > 0);
    }
}
