//! Property-based tests for the dense/sparse linear-algebra kernels.

use largeea_tensor::{Matrix, SparseMatrix};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn close(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_of_product((a, b) in (matrix(4, 3), matrix(3, 5))) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(close(&left, &right, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_addition((a, b, c) in (matrix(3, 4), matrix(4, 2), matrix(4, 2))) {
        // A·(B + C) = A·B + A·C
        let mut bc = b.clone();
        bc.add_assign(&c);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        prop_assert!(close(&left, &right, 1e-3));
    }

    #[test]
    fn spmm_agrees_with_dense_matmul(
        entries in prop::collection::vec((0u32..5, 0u32..6, -3.0f32..3.0), 0..20),
        d in matrix(6, 3),
    ) {
        let sp = SparseMatrix::from_coo(5, 6, entries.clone());
        let mut dense = Matrix::zeros(5, 6);
        for (r, c, v) in entries {
            dense[(r as usize, c as usize)] += v;
        }
        prop_assert!(close(&sp.spmm(&d), &dense.matmul(&d), 1e-4));
    }

    #[test]
    fn sparse_transpose_involution(
        entries in prop::collection::vec((0u32..6, 0u32..4, -3.0f32..3.0), 0..25),
    ) {
        let sp = SparseMatrix::from_coo(6, 4, entries);
        prop_assert_eq!(sp.transpose().transpose(), sp);
    }

    #[test]
    fn l2_normalized_rows_are_unit_or_zero(m in matrix(5, 4)) {
        let mut n = m.clone();
        n.l2_normalize_rows(1e-12);
        for r in 0..5 {
            let norm: f32 = n.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            let original: f32 = m.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            if original > 1e-6 {
                prop_assert!((norm - 1.0).abs() < 1e-3, "row {} norm {}", r, norm);
            } else {
                prop_assert!(norm < 1e-3);
            }
        }
    }

    #[test]
    fn gather_then_vstack_roundtrip(m in matrix(6, 3)) {
        let top = m.gather_rows(&[0, 1, 2]);
        let bottom = m.gather_rows(&[3, 4, 5]);
        prop_assert_eq!(top.vstack(&bottom), m);
    }
}
