//! Property-based tests for the dense/sparse linear-algebra kernels.

use largeea_common::check::for_each_case;
use largeea_common::rng::Rng;
use largeea_tensor::{Matrix, SparseMatrix};

fn matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-4.0f32..4.0))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn entries(rng: &mut Rng, rows: u32, cols: u32, max: usize) -> Vec<(u32, u32, f32)> {
    let count = rng.gen_range(0..max);
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0..rows),
                rng.gen_range(0..cols),
                rng.gen_range(-3.0f32..3.0),
            )
        })
        .collect()
}

fn close(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

#[test]
fn transpose_of_product() {
    for_each_case(0x7501, 64, |rng| {
        let a = matrix(rng, 4, 3);
        let b = matrix(rng, 3, 5);
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert!(close(&left, &right, 1e-4));
    });
}

#[test]
fn matmul_distributes_over_addition() {
    for_each_case(0x7502, 64, |rng| {
        let a = matrix(rng, 3, 4);
        let b = matrix(rng, 4, 2);
        let c = matrix(rng, 4, 2);
        // A·(B + C) = A·B + A·C
        let mut bc = b.clone();
        bc.add_assign(&c);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        assert!(close(&left, &right, 1e-3));
    });
}

#[test]
fn spmm_agrees_with_dense_matmul() {
    for_each_case(0x7503, 64, |rng| {
        let es = entries(rng, 5, 6, 20);
        let d = matrix(rng, 6, 3);
        let sp = SparseMatrix::from_coo(5, 6, es.clone());
        let mut dense = Matrix::zeros(5, 6);
        for (r, c, v) in es {
            dense[(r as usize, c as usize)] += v;
        }
        assert!(close(&sp.spmm(&d), &dense.matmul(&d), 1e-4));
    });
}

#[test]
fn sparse_transpose_involution() {
    for_each_case(0x7504, 64, |rng| {
        let es = entries(rng, 6, 4, 25);
        let sp = SparseMatrix::from_coo(6, 4, es);
        assert_eq!(sp.transpose().transpose(), sp);
    });
}

#[test]
fn l2_normalized_rows_are_unit_or_zero() {
    for_each_case(0x7505, 64, |rng| {
        let m = matrix(rng, 5, 4);
        let mut n = m.clone();
        n.l2_normalize_rows(1e-12);
        for r in 0..5 {
            let norm: f32 = n.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            let original: f32 = m.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            if original > 1e-6 {
                assert!((norm - 1.0).abs() < 1e-3, "row {} norm {}", r, norm);
            } else {
                assert!(norm < 1e-3);
            }
        }
    });
}

#[test]
fn gather_then_vstack_roundtrip() {
    for_each_case(0x7506, 64, |rng| {
        let m = matrix(rng, 6, 3);
        let top = m.gather_rows(&[0, 1, 2]);
        let bottom = m.gather_rows(&[3, 4, 5]);
        assert_eq!(top.vstack(&bottom), m);
    });
}
