//! Parallel batch helpers for pairwise string work.
//!
//! The NFF string matrix is O(n²) string operations; these helpers fan the
//! per-item work out over the persistent pool (DESIGN.md §S0.6). Every
//! function collects per-block results in block order, and every item is
//! computed independently, so outputs are bit-identical for any thread
//! count. The `*_in` variants take an explicit [`Pool`] so tests can pin
//! the width; the plain variants use [`Pool::global`].

use crate::jaccard::{jaccard, shingles};
use crate::levenshtein::levenshtein_similarity;
use crate::minhash::{MinHasher, Signature};
use largeea_tensor::parallel::Pool;

/// MinHash signatures of `texts` (already-normalised labels), in input
/// order, parallel over text blocks. Uses the allocation-free
/// [`MinHasher::signature_of`] path per item.
pub fn minhash_signatures<S: AsRef<str> + Sync>(
    hasher: &MinHasher,
    texts: &[S],
    shingle_k: usize,
) -> Vec<Signature> {
    minhash_signatures_in(hasher, texts, shingle_k, Pool::global())
}

/// [`minhash_signatures`] on an explicit pool.
pub fn minhash_signatures_in<S: AsRef<str> + Sync>(
    hasher: &MinHasher,
    texts: &[S],
    shingle_k: usize,
    pool: &Pool,
) -> Vec<Signature> {
    pool.map_blocks(texts.len(), 64, |range| {
        range
            .map(|i| hasher.signature_of(texts[i].as_ref(), shingle_k))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Normalised Levenshtein similarity for each `(a, b)` pair, in pair
/// order, parallel over pair blocks.
pub fn levenshtein_similarities<A: AsRef<str> + Sync, B: AsRef<str> + Sync>(
    pairs: &[(A, B)],
) -> Vec<f64> {
    levenshtein_similarities_in(pairs, Pool::global())
}

/// [`levenshtein_similarities`] on an explicit pool.
pub fn levenshtein_similarities_in<A: AsRef<str> + Sync, B: AsRef<str> + Sync>(
    pairs: &[(A, B)],
    pool: &Pool,
) -> Vec<f64> {
    pool.map_blocks(pairs.len(), 16, |range| {
        range
            .map(|i| levenshtein_similarity(pairs[i].0.as_ref(), pairs[i].1.as_ref()))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Exact Jaccard similarity over character `k`-shingles for each `(a, b)`
/// pair, in pair order, parallel over pair blocks.
pub fn jaccard_similarities<A: AsRef<str> + Sync, B: AsRef<str> + Sync>(
    pairs: &[(A, B)],
    shingle_k: usize,
) -> Vec<f64> {
    jaccard_similarities_in(pairs, shingle_k, Pool::global())
}

/// [`jaccard_similarities`] on an explicit pool.
pub fn jaccard_similarities_in<A: AsRef<str> + Sync, B: AsRef<str> + Sync>(
    pairs: &[(A, B)],
    shingle_k: usize,
    pool: &Pool,
) -> Vec<f64> {
    pool.map_blocks(pairs.len(), 16, |range| {
        range
            .map(|i| {
                jaccard(
                    &shingles(pairs[i].0.as_ref(), shingle_k),
                    &shingles(pairs[i].1.as_ref(), shingle_k),
                )
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_match_sequential_path() {
        let mh = MinHasher::new(32, 7);
        let texts: Vec<String> = (0..200).map(|i| format!("entity number {i}")).collect();
        let par = minhash_signatures(&mh, &texts, 3);
        for (i, t) in texts.iter().enumerate() {
            assert_eq!(par[i], mh.signature_of(t, 3), "text {i}");
        }
    }

    #[test]
    fn levenshtein_batch_matches_single_calls() {
        let pairs: Vec<(String, String)> = (0..100)
            .map(|i| (format!("label {i}"), format!("label {}", i / 2)))
            .collect();
        let sims = levenshtein_similarities(&pairs);
        for (i, (a, b)) in pairs.iter().enumerate() {
            assert_eq!(sims[i], levenshtein_similarity(a, b));
        }
    }

    #[test]
    fn jaccard_batch_matches_single_calls() {
        let pairs = [("london", "londres"), ("tokyo", "kyoto"), ("", "")];
        let sims = jaccard_similarities(&pairs, 3);
        for (i, (a, b)) in pairs.iter().enumerate() {
            assert_eq!(sims[i], jaccard(&shingles(a, 3), &shingles(b, 3)));
        }
    }

    #[test]
    fn explicit_widths_agree() {
        let mh = MinHasher::new(16, 3);
        let texts: Vec<String> = (0..300).map(|i| format!("name-{i}")).collect();
        let p1 = Pool::new(1);
        let p4 = Pool::new(4);
        assert_eq!(
            minhash_signatures_in(&mh, &texts, 2, &p1),
            minhash_signatures_in(&mh, &texts, 2, &p4)
        );
        let pairs: Vec<(String, String)> =
            texts.iter().map(|t| (t.clone(), format!("{t}x"))).collect();
        assert_eq!(
            levenshtein_similarities_in(&pairs, &p1),
            levenshtein_similarities_in(&pairs, &p4)
        );
    }
}
