//! Deterministic subword hash encoder — the BERT substitute for SENS.
//!
//! The paper's SENS function feeds each entity name through BERT and
//! max-pools the token embeddings into one fixed-dimension vector. For this
//! reproduction the encoder must (i) map each name to a fixed-dimension
//! vector with no training, (ii) place names that share subword material —
//! the signal that makes cross-lingual pairs like "London"/"Londres" align —
//! close together, and (iii) keep unrelated names apart.
//!
//! Feature hashing achieves all three: every token contributes its whole
//! form plus its character n-grams; each feature is hashed to a handful of
//! signed coordinates (a sparse random projection, which preserves inner
//! products in expectation by the Johnson–Lindenstrauss argument); token
//! vectors are L2-normalised and max-pooled exactly as the paper pools BERT
//! token embeddings.

use crate::hashing::hash_str;
use crate::normalize::normalize_name;
use crate::tokenize::{char_ngrams, tokens};
use largeea_tensor::parallel::Pool;
use largeea_tensor::Matrix;

/// Subword feature-hashing name encoder. See the [module docs](self).
///
/// ```
/// use largeea_text::HashEncoder;
///
/// let enc = HashEncoder::new(64, 42);
/// let emb = enc.encode_batch(&["London", "Londres", "Beijing"]);
/// let cos = |a: &[f32], b: &[f32]| -> f32 {
///     a.iter().zip(b).map(|(x, y)| x * y).sum()
/// };
/// // shared-root translation is closer than an unrelated name
/// assert!(cos(emb.row(0), emb.row(1)) > cos(emb.row(0), emb.row(2)));
/// ```
#[derive(Debug, Clone)]
pub struct HashEncoder {
    dim: usize,
    seed: u64,
    ngram_sizes: Vec<usize>,
    hashes_per_feature: usize,
}

impl HashEncoder {
    /// Creates an encoder with the given embedding dimension and seed.
    /// Defaults: n-grams of size 2–4, 4 signed coordinates per feature.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(
            dim >= 8,
            "embedding dimension must be at least 8, got {dim}"
        );
        Self {
            dim,
            seed,
            ngram_sizes: vec![2, 3, 4],
            hashes_per_feature: 4,
        }
    }

    /// Overrides the character n-gram sizes.
    pub fn with_ngram_sizes(mut self, sizes: Vec<usize>) -> Self {
        assert!(!sizes.is_empty(), "need at least one n-gram size");
        self.ngram_sizes = sizes;
        self
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Scatters one feature into `acc` as `hashes_per_feature` signed
    /// coordinates, weighted by `w`.
    fn scatter(&self, feature: &str, w: f32, acc: &mut [f32]) {
        let base = hash_str(feature, self.seed);
        for j in 0..self.hashes_per_feature {
            let h = crate::hashing::mix(
                base,
                self.seed ^ (j as u64).wrapping_mul(0xA24BAED4963EE407),
            );
            let idx = (h % self.dim as u64) as usize;
            let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
            acc[idx] += sign * w;
        }
    }

    /// Encodes one raw entity label into a `dim`-length vector.
    ///
    /// Pipeline: normalise → per-token subword hashing → token L2-norm →
    /// max-pool over tokens (sign-aware: takes the value of largest
    /// magnitude per dimension, which keeps the signed projections useful).
    pub fn encode(&self, raw_name: &str) -> Vec<f32> {
        let name = normalize_name(raw_name);
        let mut pooled = vec![0.0f32; self.dim];
        let mut token_vec = vec![0.0f32; self.dim];
        let mut any = false;
        for tok in tokens(&name) {
            any = true;
            token_vec.fill(0.0);
            self.scatter(tok, 2.0, &mut token_vec); // whole token, up-weighted
            for &n in &self.ngram_sizes {
                for g in char_ngrams(tok, n) {
                    self.scatter(&g, 1.0, &mut token_vec);
                }
            }
            let norm = token_vec.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                let inv = 1.0 / norm;
                for (p, &t) in pooled.iter_mut().zip(&token_vec) {
                    let v = t * inv;
                    if v.abs() > p.abs() {
                        *p = v;
                    }
                }
            }
        }
        if !any {
            return pooled; // empty name → zero vector
        }
        pooled
    }

    /// Encodes a batch of labels into a row-per-name matrix with
    /// L2-normalised rows (the paper's `h_e ← h_e / (‖h_e‖₂ + ε)`).
    /// Parallel over name blocks on the global pool.
    pub fn encode_batch<S: AsRef<str> + Sync>(&self, names: &[S]) -> Matrix {
        self.encode_batch_in(names, Pool::global())
    }

    /// [`HashEncoder::encode_batch`] on an explicit pool, so tests can pin
    /// the width. Each row is encoded independently and rows never span
    /// task boundaries, so results are bit-identical for any thread count.
    pub fn encode_batch_in<S: AsRef<str> + Sync>(&self, names: &[S], pool: &Pool) -> Matrix {
        let mut out = Matrix::zeros(names.len(), self.dim);
        let dim = self.dim;
        pool.rows_mut(out.as_mut_slice(), dim, 64, |block, first_row| {
            for (ri, row) in block.chunks_mut(dim).enumerate() {
                let v = self.encode(names[first_row + ri].as_ref());
                row.copy_from_slice(&v);
            }
        });
        out.l2_normalize_rows(1e-12);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    fn enc() -> HashEncoder {
        HashEncoder::new(128, 42)
    }

    #[test]
    fn identical_names_identical_vectors() {
        let e = enc();
        assert_eq!(e.encode("Paris"), e.encode("Paris"));
        // normalisation folds case/diacritics before hashing
        assert_eq!(e.encode("PARIS"), e.encode("paris"));
    }

    #[test]
    fn translated_variant_closer_than_unrelated() {
        let e = enc();
        let london = e.encode("London");
        let londres = e.encode("Londres");
        let tokyo = e.encode("Beijing");
        assert!(
            cosine(&london, &londres) > cosine(&london, &tokyo) + 0.1,
            "shared-root variant should be much closer: {} vs {}",
            cosine(&london, &londres),
            cosine(&london, &tokyo)
        );
    }

    #[test]
    fn multiword_shares_token_signal() {
        let e = enc();
        let a = e.encode("New York City");
        let b = e.encode("City of New York");
        let c = e.encode("Banana Bread Recipe");
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn empty_name_is_zero() {
        let e = enc();
        assert!(e.encode("").iter().all(|&x| x == 0.0));
        assert!(e.encode("()").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn batch_rows_are_unit_normalised() {
        let e = enc();
        let m = e.encode_batch(&["Paris", "Berlin", "Londres"]);
        for r in 0..3 {
            let n: f32 = m.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "row {r} norm {n}");
        }
    }

    #[test]
    fn batch_matches_single_up_to_normalisation() {
        let e = enc();
        let m = e.encode_batch(&["Tour Eiffel"]);
        let mut single = e.encode("Tour Eiffel");
        let n: f32 = single.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut single {
            *x /= n + 1e-12;
        }
        for (a, b) in m.row(0).iter().zip(&single) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn different_seeds_give_different_spaces() {
        let a = HashEncoder::new(64, 1).encode("Paris");
        let b = HashEncoder::new(64, 2).encode("Paris");
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn tiny_dim_rejected() {
        HashEncoder::new(4, 0);
    }
}
