//! Seeded string hashing shared by the encoder, MinHash and LSH.
//!
//! FNV-1a for byte streams plus a SplitMix64 finaliser for deriving families
//! of independent hash functions from one seed. Deterministic across
//! platforms and runs — a requirement for reproducible experiments.

/// FNV-1a over a byte slice (64-bit).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finaliser: decorrelates a hash against a seed, producing the
/// `seed`-th member of a hash family.
#[inline]
pub fn mix(h: u64, seed: u64) -> u64 {
    let mut z = h ^ seed.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hashes a string with the `seed`-th member of the family.
#[inline]
pub fn hash_str(s: &str, seed: u64) -> u64 {
    mix(fnv1a(s.as_bytes()), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("") = offset basis
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }

    #[test]
    fn hash_str_deterministic_and_seed_sensitive() {
        assert_eq!(hash_str("paris", 1), hash_str("paris", 1));
        assert_ne!(hash_str("paris", 1), hash_str("paris", 2));
        assert_ne!(hash_str("paris", 1), hash_str("parys", 1));
    }

    #[test]
    fn mix_spreads_small_inputs() {
        // consecutive inputs should not produce consecutive outputs
        let a = mix(1, 0);
        let b = mix(2, 0);
        assert!(a.abs_diff(b) > 1 << 32);
    }
}
