//! Exact Jaccard similarity over character shingles.

use std::collections::BTreeSet;

/// The set of character `k`-shingles of a string (as hashable strings).
/// Strings shorter than `k` yield the whole string as a single shingle.
pub fn shingles(text: &str, k: usize) -> BTreeSet<String> {
    assert!(k >= 1, "shingle size must be >= 1");
    let chars: Vec<char> = text.chars().collect();
    if chars.is_empty() {
        return BTreeSet::new();
    }
    if chars.len() <= k {
        return BTreeSet::from([text.to_owned()]);
    }
    chars.windows(k).map(|w| w.iter().collect()).collect()
}

/// Exact Jaccard similarity `|A ∩ B| / |A ∪ B|` (1.0 for two empty sets).
pub fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shingles_of_short_and_long() {
        assert_eq!(shingles("ab", 3), BTreeSet::from(["ab".to_owned()]));
        let s = shingles("abcd", 3);
        assert_eq!(s, BTreeSet::from(["abc".to_owned(), "bcd".to_owned()]));
    }

    #[test]
    fn jaccard_bounds_and_identity() {
        let a = shingles("paris", 3);
        let b = shingles("paris", 3);
        assert_eq!(jaccard(&a, &b), 1.0);
        let c = shingles("tokyo", 3);
        let j = jaccard(&a, &c);
        assert!((0.0..1.0).contains(&j));
    }

    #[test]
    fn jaccard_of_empties() {
        let e = BTreeSet::new();
        assert_eq!(jaccard(&e, &e), 1.0);
        let a = shingles("x", 2);
        assert_eq!(jaccard(&a, &e), 0.0);
    }

    #[test]
    fn similar_strings_high_jaccard() {
        let a = shingles("london", 3);
        let b = shingles("londres", 3);
        let c = shingles("reykjavik", 3);
        assert!(jaccard(&a, &b) > jaccard(&a, &c));
    }
}
