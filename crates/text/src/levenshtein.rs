//! Levenshtein edit distance and its normalised similarity — STNS's string
//! metric.

/// Levenshtein distance between two strings (unit costs), two-row DP.
///
/// `O(|a|·|b|)` time, `O(min)` space. Operates on chars, so multibyte
/// characters count as single edits.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (short, long): (Vec<char>, Vec<char>) = {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        if av.len() <= bv.len() {
            (av, bv)
        } else {
            (bv, av)
        }
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Bounded Levenshtein distance (Ukkonen's band): returns `Some(d)` if
/// `d ≤ max_d`, else `None`, visiting only the `2·max_d + 1` diagonal band.
///
/// STNS's LSH filter guarantees candidates are already similar, so a tight
/// bound prunes the DP from `O(|a|·|b|)` to `O(max_d · min(|a|,|b|))` —
/// the difference between feasible and not on million-entity vocabularies.
pub fn levenshtein_bounded(a: &str, b: &str, max_d: usize) -> Option<usize> {
    let (short, long): (Vec<char>, Vec<char>) = {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        if av.len() <= bv.len() {
            (av, bv)
        } else {
            (bv, av)
        }
    };
    if long.len() - short.len() > max_d {
        return None; // length gap alone exceeds the budget
    }
    if short.is_empty() {
        return Some(long.len());
    }
    const BIG: usize = usize::MAX / 2;
    let m = short.len();
    let mut prev = vec![BIG; m + 1];
    let mut cur = vec![BIG; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(max_d.min(m) + 1) {
        *p = j;
    }
    for (i, &lc) in long.iter().enumerate() {
        // band for this row: |i+1 - j| <= max_d
        let lo = (i + 1).saturating_sub(max_d);
        let hi = (i + 1 + max_d).min(m);
        cur.fill(BIG);
        if lo == 0 {
            cur[0] = i + 1;
        }
        let mut row_min = BIG;
        for j in lo.max(1)..=hi {
            let sub = prev[j - 1] + usize::from(lc != short[j - 1]);
            let del = prev[j].saturating_add(1);
            let ins = cur[j - 1].saturating_add(1);
            cur[j] = sub.min(del).min(ins);
            row_min = row_min.min(cur[j]);
        }
        if lo == 0 {
            row_min = row_min.min(cur[0]);
        }
        if row_min > max_d {
            return None; // the whole band exceeded the budget
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[m];
    (d <= max_d).then_some(d)
}

/// Normalised string similarity `1 − d/max(|a|,|b|)` ∈ [0, 1].
/// Two empty strings are perfectly similar.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("über", "uber"), 1);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("london", "londres");
        assert!(s > 0.5 && s < 1.0);
    }

    #[test]
    fn bounded_agrees_with_exact_within_budget() {
        let cases = [
            ("kitten", "sitting"),
            ("london", "londres"),
            ("", "abc"),
            ("same", "same"),
            ("münchen", "munich"),
        ];
        for (a, b) in cases {
            let exact = levenshtein(a, b);
            for max_d in 0..=8 {
                let bounded = levenshtein_bounded(a, b, max_d);
                if exact <= max_d {
                    assert_eq!(bounded, Some(exact), "{a} vs {b} max_d={max_d}");
                } else {
                    assert_eq!(bounded, None, "{a} vs {b} max_d={max_d}");
                }
            }
        }
    }

    #[test]
    fn bounded_rejects_on_length_gap_fast() {
        assert_eq!(levenshtein_bounded("ab", "abcdefghij", 3), None);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("kitten", "sitting"), ("a", ""), ("münchen", "munich")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }
}
