//! Text substrate for LargeEA's name channel.
//!
//! The paper's name channel (NFF, §2.3) needs three text capabilities, each
//! of which it delegates to a heavyweight external component. This crate
//! rebuilds all three in pure Rust:
//!
//! | Paper component | Here |
//! |-----------------|------|
//! | BERT + max-pooling → semantic name embeddings | [`HashEncoder`]: deterministic subword feature-hashing encoder with the same max-pooling contract |
//! | datasketch MinHash-LSH → candidate filtering | [`MinHasher`] + [`LshIndex`] |
//! | python-Levenshtein → string similarity | [`levenshtein`](fn@levenshtein) (banded DP) |
//!
//! Everything is deterministic given its seed and requires no training or
//! model downloads — which mirrors the paper's design goal of a *training
//! free* name channel. Pairwise hot paths (MinHash sketching, Levenshtein,
//! Jaccard) have parallel batch variants in [`batch`] running on the
//! persistent worker pool.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod hash_encoder;
pub mod hashing;
pub mod jaccard;
pub mod levenshtein;
pub mod lsh;
pub mod minhash;
pub mod normalize;
pub mod tokenize;

pub use hash_encoder::HashEncoder;
pub use jaccard::{jaccard, shingles};
pub use levenshtein::{levenshtein, levenshtein_bounded, levenshtein_similarity};
pub use lsh::LshIndex;
pub use minhash::{MinHasher, Signature};
pub use normalize::normalize_name;
pub use tokenize::{char_ngrams, tokens};
