//! Locality-sensitive hashing over MinHash signatures (banding scheme).
//!
//! STNS only needs candidate pairs whose Jaccard similarity clears a
//! threshold θ; LSH banding finds them without comparing all `|E_s|·|E_t|`
//! pairs. With `b` bands of `r` rows the probability a pair of similarity
//! `s` collides in at least one band is `1 − (1 − s^r)^b`, an S-curve whose
//! inflection sits near `(1/b)^{1/r}`; [`LshIndex::with_threshold`] picks
//! `(b, r)` to put that inflection at θ, like datasketch does.

use crate::hashing::mix;
use crate::minhash::Signature;
use std::collections::HashMap;

/// An LSH index over MinHash signatures.
#[derive(Debug)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    buckets: HashMap<(u32, u64), Vec<u32>>,
}

impl LshIndex {
    /// Creates an index with an explicit banding layout.
    /// `bands * rows` must equal the signature length used at insert time.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands >= 1 && rows >= 1, "bands and rows must be positive");
        Self {
            bands,
            rows,
            buckets: HashMap::new(),
        }
    }

    /// Picks the banding layout whose collision S-curve has its threshold
    /// closest to `theta`, among all factorisations of `num_perms`.
    pub fn with_threshold(num_perms: usize, theta: f64) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta must lie in [0,1]");
        let mut best = (1usize, num_perms, f64::INFINITY);
        for rows in 1..=num_perms {
            if !num_perms.is_multiple_of(rows) {
                continue;
            }
            let bands = num_perms / rows;
            let t = (1.0 / bands as f64).powf(1.0 / rows as f64);
            let err = (t - theta).abs();
            if err < best.2 {
                best = (bands, rows, err);
            }
        }
        Self::new(best.0, best.1)
    }

    /// Banding layout `(bands, rows)`.
    pub fn layout(&self) -> (usize, usize) {
        (self.bands, self.rows)
    }

    fn band_keys<'a>(&'a self, sig: &'a Signature) -> impl Iterator<Item = (u32, u64)> + 'a {
        assert_eq!(
            sig.len(),
            self.bands * self.rows,
            "signature length {} != bands*rows {}",
            sig.len(),
            self.bands * self.rows
        );
        sig.chunks(self.rows).enumerate().map(|(b, chunk)| {
            let mut h = 0xcbf29ce484222325u64;
            for &v in chunk {
                h = mix(h ^ v, b as u64 + 1);
            }
            (b as u32, h)
        })
    }

    /// Inserts `id` with its signature.
    pub fn insert(&mut self, id: u32, sig: &Signature) {
        let keys: Vec<_> = self.band_keys(sig).collect();
        for key in keys {
            self.buckets.entry(key).or_default().push(id);
        }
    }

    /// All ids that share at least one band bucket with `sig`, deduplicated,
    /// in ascending order.
    pub fn candidates(&self, sig: &Signature) -> Vec<u32> {
        let mut out = Vec::new();
        for key in self.band_keys(sig) {
            if let Some(ids) = self.buckets.get(&key) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of non-empty buckets (diagnostics).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::shingles;
    use crate::minhash::MinHasher;

    #[test]
    fn threshold_layout_multiplies_back() {
        let idx = LshIndex::with_threshold(128, 0.5);
        let (b, r) = idx.layout();
        assert_eq!(b * r, 128);
        let t = (1.0 / b as f64).powf(1.0 / r as f64);
        assert!((t - 0.5).abs() < 0.2, "threshold landed at {t}");
    }

    #[test]
    fn near_duplicates_are_candidates() {
        let mh = MinHasher::new(128, 9);
        let mut idx = LshIndex::with_threshold(128, 0.5);
        let names = ["london", "londres", "londonn", "reykjavik", "yokohama"];
        for (i, n) in names.iter().enumerate() {
            idx.insert(i as u32, &mh.signature(&shingles(n, 3)));
        }
        let cands = idx.candidates(&mh.signature(&shingles("london", 3)));
        assert!(cands.contains(&0));
        assert!(cands.contains(&2), "londonn should collide: {cands:?}");
        assert!(!cands.contains(&3), "reykjavik should not collide");
    }

    #[test]
    fn identical_strings_always_collide() {
        let mh = MinHasher::new(64, 1);
        let mut idx = LshIndex::with_threshold(64, 0.8);
        let sig = mh.signature(&shingles("exact match", 3));
        idx.insert(42, &sig);
        assert_eq!(idx.candidates(&sig), vec![42]);
    }

    #[test]
    fn candidates_deduplicated_and_sorted() {
        let mh = MinHasher::new(32, 2);
        let mut idx = LshIndex::new(8, 4);
        let sig = mh.signature(&shingles("aaa", 2));
        idx.insert(7, &sig);
        idx.insert(3, &sig);
        let c = idx.candidates(&sig);
        assert_eq!(c, vec![3, 7]);
    }

    #[test]
    #[should_panic(expected = "signature length")]
    fn wrong_signature_length_panics() {
        let mut idx = LshIndex::new(4, 4);
        idx.insert(0, &vec![1, 2, 3]);
    }
}
