//! MinHash signatures — the datasketch substitute used by STNS to avoid
//! all-pairs Levenshtein.

use crate::hashing::{fnv1a, mix};
use std::collections::BTreeSet;

/// A MinHash signature: one minimum per permutation.
pub type Signature = Vec<u64>;

/// Computes MinHash signatures whose component-wise equality rate is an
/// unbiased estimator of Jaccard similarity.
///
/// Implemented as one base hash per shingle re-mixed with `num_perms`
/// independent finalisers (the standard "one hash, many mixes" scheme).
///
/// ```
/// use largeea_text::{shingles, MinHasher};
///
/// let mh = MinHasher::new(128, 7);
/// let a = mh.signature(&shingles("london", 3));
/// let b = mh.signature(&shingles("londres", 3));
/// let c = mh.signature(&shingles("reykjavik", 3));
/// assert!(mh.estimate(&a, &b) > mh.estimate(&a, &c));
/// ```
#[derive(Debug, Clone)]
pub struct MinHasher {
    num_perms: usize,
    seeds: Vec<u64>,
}

impl MinHasher {
    /// Creates a hasher with `num_perms` permutations derived from `seed`.
    pub fn new(num_perms: usize, seed: u64) -> Self {
        assert!(num_perms >= 2, "need at least 2 permutations");
        let seeds = (0..num_perms as u64)
            .map(|i| mix(i.wrapping_add(0x5851F42D4C957F2D), seed))
            .collect();
        Self { num_perms, seeds }
    }

    /// Number of permutations (signature length).
    pub fn num_perms(&self) -> usize {
        self.num_perms
    }

    /// The signature of a shingle set. An empty set yields the all-`MAX`
    /// signature, which matches nothing that is non-empty.
    pub fn signature(&self, shingles: &BTreeSet<String>) -> Signature {
        let mut sig = vec![u64::MAX; self.num_perms];
        for sh in shingles {
            self.absorb(&mut sig, sh.as_bytes());
        }
        sig
    }

    /// The signature of `text`'s character `k`-shingles, computed directly
    /// from the string — no `BTreeSet`, no per-shingle `String`.
    ///
    /// Bit-identical to `signature(&shingles(text, k))`: a signature keeps
    /// component-wise minima, which are invariant to shingle order and
    /// duplicates, and each shingle hashes the same UTF-8 bytes the
    /// set-based path would. This is the STNS sketching hot path — the
    /// set-based construction allocated one `String` plus a tree node per
    /// shingle per entity name.
    pub fn signature_of(&self, text: &str, k: usize) -> Signature {
        assert!(k >= 1, "shingle size must be >= 1");
        let mut sig = vec![u64::MAX; self.num_perms];
        if text.is_empty() {
            return sig;
        }
        // Byte offset of each char start, plus the end sentinel, so every
        // shingle is a borrowed subslice of `text`.
        let starts: Vec<usize> = text
            .char_indices()
            .map(|(i, _)| i)
            .chain(std::iter::once(text.len()))
            .collect();
        let n_chars = starts.len() - 1;
        if n_chars <= k {
            self.absorb(&mut sig, text.as_bytes());
        } else {
            for w in starts.windows(k + 1) {
                self.absorb(&mut sig, &text.as_bytes()[w[0]..w[k]]);
            }
        }
        sig
    }

    /// Folds one shingle's hash into the running component-wise minima.
    #[inline]
    fn absorb(&self, sig: &mut [u64], shingle: &[u8]) {
        let base = fnv1a(shingle);
        for (slot, &s) in sig.iter_mut().zip(&self.seeds) {
            let h = mix(base, s);
            if h < *slot {
                *slot = h;
            }
        }
    }

    /// Estimates Jaccard similarity from two signatures.
    pub fn estimate(&self, a: &Signature, b: &Signature) -> f64 {
        assert_eq!(a.len(), b.len(), "signature length mismatch");
        let eq = a.iter().zip(b).filter(|(x, y)| x == y).count();
        eq as f64 / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::{jaccard, shingles};

    #[test]
    fn identical_sets_estimate_one() {
        let mh = MinHasher::new(64, 7);
        let s = shingles("entity alignment", 3);
        let a = mh.signature(&s);
        assert_eq!(mh.estimate(&a, &a), 1.0);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let mh = MinHasher::new(256, 11);
        let pairs = [
            ("london", "londres"),
            ("new york city", "york new"),
            ("completely different", "nothing alike at all"),
        ];
        for (x, y) in pairs {
            let sx = shingles(x, 3);
            let sy = shingles(y, 3);
            let truth = jaccard(&sx, &sy);
            let est = mh.estimate(&mh.signature(&sx), &mh.signature(&sy));
            assert!(
                (truth - est).abs() < 0.15,
                "{x} vs {y}: true {truth:.3} est {est:.3}"
            );
        }
    }

    #[test]
    fn empty_set_matches_nothing() {
        let mh = MinHasher::new(32, 3);
        let empty = mh.signature(&BTreeSet::new());
        let full = mh.signature(&shingles("paris", 3));
        assert_eq!(mh.estimate(&empty, &full), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MinHasher::new(16, 5).signature(&shingles("x y z", 2));
        let b = MinHasher::new(16, 5).signature(&shingles("x y z", 2));
        let c = MinHasher::new(16, 6).signature(&shingles("x y z", 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn too_few_perms_rejected() {
        MinHasher::new(1, 0);
    }

    #[test]
    fn signature_of_matches_set_based_signature() {
        let mh = MinHasher::new(64, 9);
        for text in [
            "",
            "a",
            "ab",
            "abc",
            "aaaaaa", // duplicate shingles
            "new york city",
            "münchen żółć", // multi-byte chars
        ] {
            for k in [1, 2, 3, 5] {
                assert_eq!(
                    mh.signature_of(text, k),
                    mh.signature(&shingles(text, k)),
                    "text={text:?} k={k}"
                );
            }
        }
    }
}
