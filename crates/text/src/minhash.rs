//! MinHash signatures — the datasketch substitute used by STNS to avoid
//! all-pairs Levenshtein.

use crate::hashing::{fnv1a, mix};
use std::collections::BTreeSet;

/// A MinHash signature: one minimum per permutation.
pub type Signature = Vec<u64>;

/// Computes MinHash signatures whose component-wise equality rate is an
/// unbiased estimator of Jaccard similarity.
///
/// Implemented as one base hash per shingle re-mixed with `num_perms`
/// independent finalisers (the standard "one hash, many mixes" scheme).
///
/// ```
/// use largeea_text::{shingles, MinHasher};
///
/// let mh = MinHasher::new(128, 7);
/// let a = mh.signature(&shingles("london", 3));
/// let b = mh.signature(&shingles("londres", 3));
/// let c = mh.signature(&shingles("reykjavik", 3));
/// assert!(mh.estimate(&a, &b) > mh.estimate(&a, &c));
/// ```
#[derive(Debug, Clone)]
pub struct MinHasher {
    num_perms: usize,
    seeds: Vec<u64>,
}

impl MinHasher {
    /// Creates a hasher with `num_perms` permutations derived from `seed`.
    pub fn new(num_perms: usize, seed: u64) -> Self {
        assert!(num_perms >= 2, "need at least 2 permutations");
        let seeds = (0..num_perms as u64)
            .map(|i| mix(i.wrapping_add(0x5851F42D4C957F2D), seed))
            .collect();
        Self { num_perms, seeds }
    }

    /// Number of permutations (signature length).
    pub fn num_perms(&self) -> usize {
        self.num_perms
    }

    /// The signature of a shingle set. An empty set yields the all-`MAX`
    /// signature, which matches nothing that is non-empty.
    pub fn signature(&self, shingles: &BTreeSet<String>) -> Signature {
        let mut sig = vec![u64::MAX; self.num_perms];
        for sh in shingles {
            let base = fnv1a(sh.as_bytes());
            for (slot, &s) in sig.iter_mut().zip(&self.seeds) {
                let h = mix(base, s);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        sig
    }

    /// Estimates Jaccard similarity from two signatures.
    pub fn estimate(&self, a: &Signature, b: &Signature) -> f64 {
        assert_eq!(a.len(), b.len(), "signature length mismatch");
        let eq = a.iter().zip(b).filter(|(x, y)| x == y).count();
        eq as f64 / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::{jaccard, shingles};

    #[test]
    fn identical_sets_estimate_one() {
        let mh = MinHasher::new(64, 7);
        let s = shingles("entity alignment", 3);
        let a = mh.signature(&s);
        assert_eq!(mh.estimate(&a, &a), 1.0);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let mh = MinHasher::new(256, 11);
        let pairs = [
            ("london", "londres"),
            ("new york city", "york new"),
            ("completely different", "nothing alike at all"),
        ];
        for (x, y) in pairs {
            let sx = shingles(x, 3);
            let sy = shingles(y, 3);
            let truth = jaccard(&sx, &sy);
            let est = mh.estimate(&mh.signature(&sx), &mh.signature(&sy));
            assert!(
                (truth - est).abs() < 0.15,
                "{x} vs {y}: true {truth:.3} est {est:.3}"
            );
        }
    }

    #[test]
    fn empty_set_matches_nothing() {
        let mh = MinHasher::new(32, 3);
        let empty = mh.signature(&BTreeSet::new());
        let full = mh.signature(&shingles("paris", 3));
        assert_eq!(mh.estimate(&empty, &full), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MinHasher::new(16, 5).signature(&shingles("x y z", 2));
        let b = MinHasher::new(16, 5).signature(&shingles("x y z", 2));
        let c = MinHasher::new(16, 6).signature(&shingles("x y z", 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn too_few_perms_rejected() {
        MinHasher::new(1, 0);
    }
}
