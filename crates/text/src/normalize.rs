//! Entity-name normalisation.
//!
//! Cross-lingual entity labels differ in case, diacritics and punctuation
//! ("São Paulo" vs "Sao Paulo", "T-Minus_(producer)" vs "T-Minus"). The
//! name channel normalises before any comparison, folding exactly the
//! variation that carries no alignment signal.

/// Folds one Latin-range accented character to its base letter.
///
/// Covers the Latin-1 Supplement and Latin Extended-A ranges that dominate
/// the EN/FR/DE benchmarks; characters outside the table pass through.
fn fold_diacritic(c: char) -> char {
    match c {
        'à'..='å' | 'ā' | 'ă' | 'ą' => 'a',
        'ç' | 'ć' | 'ĉ' | 'ċ' | 'č' => 'c',
        'è'..='ë' | 'ē' | 'ĕ' | 'ė' | 'ę' | 'ě' => 'e',
        'ì'..='ï' | 'ĩ' | 'ī' | 'ĭ' | 'į' | 'ı' => 'i',
        'ñ' | 'ń' | 'ņ' | 'ň' => 'n',
        'ò'..='ö' | 'ø' | 'ō' | 'ŏ' | 'ő' => 'o',
        'ù'..='ü' | 'ũ' | 'ū' | 'ŭ' | 'ů' | 'ű' | 'ų' => 'u',
        'ý' | 'ÿ' => 'y',
        'ß' => 's', // "ß" → "ss" handled by caller duplication? keep single 's' for stability
        'ś' | 'ŝ' | 'ş' | 'š' => 's',
        'ź' | 'ż' | 'ž' => 'z',
        'ð' | 'ď' | 'đ' => 'd',
        'ĝ' | 'ğ' | 'ġ' | 'ģ' => 'g',
        'ĺ' | 'ļ' | 'ľ' | 'ł' => 'l',
        'ŕ' | 'ŗ' | 'ř' => 'r',
        'ţ' | 'ť' | 'ŧ' => 't',
        'ŵ' => 'w',
        other => other,
    }
}

/// Normalises an entity label for comparison: lowercase, diacritics folded,
/// separators (`_`, `-`, punctuation) collapsed to single spaces, outer
/// whitespace trimmed, and a trailing parenthetical qualifier — DBpedia's
/// disambiguation suffix, e.g. `"T-Minus (producer)"` — removed.
pub fn normalize_name(raw: &str) -> String {
    // Strip a final "(...)" qualifier if present.
    let stripped = match (raw.rfind('('), raw.ends_with(')')) {
        (Some(open), true) if open > 0 => &raw[..open],
        _ => raw,
    };
    let mut out = String::with_capacity(stripped.len());
    let mut pending_space = false;
    for c in stripped.chars() {
        let c = fold_diacritic(
            c.to_lowercase()
                .next()
                .expect("to_lowercase yields at least one char"),
        );
        if c.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push(c);
        } else {
            pending_space = true;
        }
    }
    out
}

/// Extracts a human-readable label from a URI-like entity key: the last
/// path segment with `_` as spaces (`http://db.org/resource/New_York` →
/// `New York`). Non-URI keys pass through unchanged.
pub fn label_from_key(key: &str) -> String {
    let tail = key.rsplit('/').next().unwrap_or(key);
    tail.replace('_', " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_folds() {
        assert_eq!(normalize_name("São Paulo"), "sao paulo");
        assert_eq!(normalize_name("Müller"), "muller");
        assert_eq!(normalize_name("Besançon"), "besancon");
    }

    #[test]
    fn strips_parenthetical_qualifier() {
        assert_eq!(normalize_name("T-Minus (producer)"), "t minus");
        assert_eq!(normalize_name("Mercury (planet)"), "mercury");
        // leading paren is not a qualifier
        assert_eq!(normalize_name("(What) A Name"), "what a name");
    }

    #[test]
    fn collapses_separators() {
        assert_eq!(normalize_name("New_York--City"), "new york city");
        assert_eq!(normalize_name("  spaced   out  "), "spaced out");
    }

    #[test]
    fn empty_and_symbol_only() {
        assert_eq!(normalize_name(""), "");
        assert_eq!(normalize_name("!!!"), "");
    }

    #[test]
    fn label_from_uri() {
        assert_eq!(
            label_from_key("http://dbpedia.org/resource/New_York"),
            "New York"
        );
        assert_eq!(label_from_key("plain name"), "plain name");
    }

    #[test]
    fn normalization_is_idempotent() {
        for s in ["São Paulo", "T-Minus (producer)", "a_b-c"] {
            let once = normalize_name(s);
            assert_eq!(normalize_name(&once), once);
        }
    }
}
