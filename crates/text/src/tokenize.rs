//! Tokenisation: whitespace tokens and character n-grams (subword units).

/// Splits a (normalised) name into whitespace-delimited tokens.
pub fn tokens(name: &str) -> impl Iterator<Item = &str> {
    name.split_whitespace()
}

/// Character n-grams of a token, with `^`/`$` boundary markers so prefixes
/// and suffixes hash distinctly (the fastText convention). A token shorter
/// than `n` yields its single padded form.
pub fn char_ngrams(token: &str, n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram size must be >= 1");
    let padded: Vec<char> = std::iter::once('^')
        .chain(token.chars())
        .chain(std::iter::once('$'))
        .collect();
    if padded.len() <= n {
        return vec![padded.iter().collect()];
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_split_on_whitespace() {
        let t: Vec<_> = tokens("new york city").collect();
        assert_eq!(t, vec!["new", "york", "city"]);
        assert_eq!(tokens("").count(), 0);
    }

    #[test]
    fn trigrams_with_boundaries() {
        let g = char_ngrams("abc", 3);
        assert_eq!(g, vec!["^ab", "abc", "bc$"]);
    }

    #[test]
    fn short_token_single_gram() {
        assert_eq!(char_ngrams("a", 3), vec!["^a$"]);
        assert_eq!(char_ngrams("", 3), vec!["^$"]);
    }

    #[test]
    fn unicode_tokens_work() {
        let g = char_ngrams("hély", 3);
        assert_eq!(g.len(), 4);
        assert_eq!(g[0], "^hé");
    }

    #[test]
    #[should_panic(expected = "n-gram size")]
    fn zero_n_rejected() {
        char_ngrams("abc", 0);
    }
}
