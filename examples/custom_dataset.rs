//! Aligning your own knowledge graphs: build two small KBs in code, save
//! them in the OpenEA on-disk layout, load them back, align, and inspect
//! per-entity predictions.
//!
//! ```sh
//! cargo run --release --example custom_dataset
//! ```
//!
//! This mirrors the workflow for real data: drop `rel_triples_1`,
//! `rel_triples_2` and `ent_links` into a directory and point
//! `largeea::kg::io::load_pair` at it.

use largeea::core::pipeline::{LargeEa, LargeEaConfig};
use largeea::core::structure_channel::{Partitioner, StructureChannelConfig};
use largeea::kg::{io, KgPair, KnowledgeGraph};
use largeea::models::{ModelKind, TrainConfig};

/// A tiny English movie KB.
fn english_kb() -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new("EN");
    let triples = [
        ("Ridley Scott", "directed", "Alien"),
        ("Ridley Scott", "directed", "Blade Runner"),
        ("Sigourney Weaver", "starred_in", "Alien"),
        ("Harrison Ford", "starred_in", "Blade Runner"),
        ("Alien", "genre", "Science Fiction"),
        ("Blade Runner", "genre", "Science Fiction"),
        ("Blade Runner", "based_on", "Do Androids Dream"),
        ("Harrison Ford", "starred_in", "Star Wars"),
        ("Star Wars", "genre", "Science Fiction"),
    ];
    for (h, r, t) in triples {
        kg.add_triple_by_name(h, r, t);
    }
    kg
}

/// The same facts in a German KB (different labels & relation vocabulary).
fn german_kb() -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new("DE");
    let triples = [
        ("Ridley Scott", "regie", "Alien"),
        ("Ridley Scott", "regie", "Blade Runner"),
        ("Sigourney Weaver", "spielte_in", "Alien"),
        ("Harrison Ford", "spielte_in", "Blade Runner"),
        ("Alien", "genre", "Science-Fiction"),
        ("Blade Runner", "genre", "Science-Fiction"),
        ("Harrison Ford", "spielte_in", "Krieg der Sterne"),
        ("Krieg der Sterne", "genre", "Science-Fiction"),
    ];
    for (h, r, t) in triples {
        kg.add_triple_by_name(h, r, t);
    }
    kg
}

fn main() {
    let source = english_kb();
    let target = german_kb();
    // Ground truth: names match except "Star Wars" ↔ "Krieg der Sterne"
    // and "Science Fiction" ↔ "Science-Fiction".
    let links = [
        ("Ridley Scott", "Ridley Scott"),
        ("Sigourney Weaver", "Sigourney Weaver"),
        ("Harrison Ford", "Harrison Ford"),
        ("Alien", "Alien"),
        ("Blade Runner", "Blade Runner"),
        ("Science Fiction", "Science-Fiction"),
        ("Star Wars", "Krieg der Sterne"),
    ];
    let alignment = links
        .iter()
        .map(|(a, b)| {
            (
                source.entity_id(a).expect("source entity exists"),
                target.entity_id(b).expect("target entity exists"),
            )
        })
        .collect();
    let pair = KgPair::new(source, target, alignment);

    // Round-trip through the OpenEA on-disk layout.
    let dir = std::env::temp_dir().join("largeea_custom_dataset");
    io::save_pair(&pair, &dir).expect("save");
    let pair = io::load_pair(&dir, "EN", "DE").expect("load");
    println!("saved + reloaded OpenEA layout at {}", dir.display());

    // Two seeds, the rest held out.
    let seeds = pair.split_seeds(0.3, 1);
    let cfg = LargeEaConfig {
        structure: StructureChannelConfig {
            k: 1, // tiny graph: one batch
            partitioner: Partitioner::None,
            model: ModelKind::GcnAlign,
            train: TrainConfig {
                epochs: 40,
                dim: 32,
                ..TrainConfig::default()
            },
            top_k: 3,
            ..StructureChannelConfig::default()
        },
        ..LargeEaConfig::default()
    };
    let report = LargeEa::new(cfg).run(&pair, &seeds);

    println!("\npredictions for held-out entities:");
    for &(s, t) in &seeds.test {
        let predicted = report.sim.best(s.idx()).map(|(c, score)| {
            (
                pair.target
                    .entity_label(largeea::kg::EntityId(c))
                    .to_owned(),
                score,
            )
        });
        let truth = pair.target.entity_label(t);
        match predicted {
            Some((label, score)) => println!(
                "  {:<18} → {:<20} (truth: {:<20}) score {:.2} {}",
                pair.source.entity_label(s),
                label,
                truth,
                score,
                if label == truth { "✓" } else { "✗" }
            ),
            None => println!("  {:<18} → no candidate", pair.source.entity_label(s)),
        }
    }
    println!(
        "\nH@1 = {:.1}% over {} held-out pairs",
        report.eval.hits1, report.eval.evaluated
    );
    std::fs::remove_dir_all(&dir).ok();
}
