//! Post-hoc analysis of an alignment run: which channel earns the hits,
//! and how accuracy varies with entity degree.
//!
//! ```sh
//! cargo run --release --example error_analysis
//! ```
//!
//! The paper's Figure 5 shows channel ablations in aggregate; this example
//! decomposes a single run pair-by-pair — the view you need when deciding
//! whether to invest in better structure (more seeds, bigger K budget) or
//! better names (cleaner labels) for *your* data.

use largeea::core::pipeline::{LargeEa, LargeEaConfig};
use largeea::core::structure_channel::StructureChannelConfig;
use largeea::core::{accuracy_by_degree, attribute_channels};
use largeea::data::Preset;
use largeea::models::{ModelKind, TrainConfig};

fn main() {
    let pair = Preset::Ids15kEnFr.spec(0.03).generate();
    let seeds = pair.split_seeds(0.2, 11);
    let cfg = LargeEaConfig {
        structure: StructureChannelConfig {
            k: 2,
            model: ModelKind::Rrea,
            train: TrainConfig {
                epochs: 50,
                dim: 64,
                ..TrainConfig::default()
            },
            ..StructureChannelConfig::default()
        },
        ..LargeEaConfig::default()
    };
    let report = LargeEa::new(cfg).run(&pair, &seeds);
    println!(
        "overall: H@1 {:.1}%  H@5 {:.1}%  over {} test pairs\n",
        report.eval.hits1, report.eval.hits5, report.eval.evaluated
    );

    println!("H@1 by source-entity degree (tail entities are the hard part):");
    for b in accuracy_by_degree(&pair, &report.sim, &seeds.test) {
        if b.pairs > 0 {
            println!(
                "  degree {:>5}: {:>4} pairs, H@1 {:>5.1}%",
                b.bucket, b.pairs, b.hits1
            );
        }
    }

    let (m_s, m_n) = (
        report.m_s.as_ref().expect("structure channel ran"),
        report.m_n.as_ref().expect("name channel ran"),
    );
    let a = attribute_channels(m_s, m_n, &report.sim, &seeds.test);
    println!("\nchannel attribution over the test pairs:");
    println!("  solved by both channels alone : {}", a.both);
    println!("  structure channel only        : {}", a.structure_only);
    println!("  name channel only             : {}", a.name_only);
    println!("  neither alone                 : {}", a.neither);
    println!("  fused matrix correct          : {}", a.fused_correct);
    println!("  rescued by fusion             : {}", a.fusion_rescued);
    println!("  broken by fusion              : {}", a.fusion_broke);

    assert!(a.fused_correct > 0, "expected some correct alignments");
}
