//! Mini-batch generation under the microscope: compare METIS-CPS, VPS and
//! raw multilevel partitioning on one dataset.
//!
//! ```sh
//! cargo run --release --example partition_playground
//! ```
//!
//! Prints, for each strategy and several K: seed retention (the Table 5
//! metric), edge-cut rate `R_ec` (the Figure 7 metric), balance, and
//! generation time — the quantities that explain *why* METIS-CPS is the
//! right mini-batch generator for EA.

use largeea::data::Preset;
use largeea::partition::{
    edge_cut, metis_cps, partition_kway, vps, CpsConfig, PartGraph, PartitionConfig,
};
use std::time::Instant;

fn main() {
    let pair = Preset::Ids100kEnFr.spec(0.02).generate();
    let seeds = pair.split_seeds(0.2, 9);
    println!(
        "IDS100K-shaped pair at 2% scale: |E|={}+{}, |T|={}+{}, {} train seeds\n",
        pair.source.num_entities(),
        pair.target.num_entities(),
        pair.source.num_triples(),
        pair.target.num_triples(),
        seeds.train.len()
    );

    // Raw partitioner quality on the source KG alone.
    let g = PartGraph::from_kg(&pair.source);
    println!("raw multilevel k-way partitioner on the source KG:");
    for k in [2, 5, 10] {
        let t = Instant::now();
        let p = partition_kway(&g, &PartitionConfig::new(k));
        println!(
            "  K={k:<3} cut={:<8.0} balance={:.3}  ({:.0} ms)",
            edge_cut(&g, &p.assignment),
            p.balance(&g),
            t.elapsed().as_secs_f64() * 1e3
        );
    }

    println!("\nmini-batch generation (retention% total/train/test, R_ec):");
    for k in [5usize, 10, 20] {
        let t = Instant::now();
        let cps = metis_cps(&pair, &seeds, &CpsConfig::new(k));
        let cps_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let v = vps(&pair, &seeds, k, 11);
        let vps_ms = t.elapsed().as_secs_f64() * 1e3;

        let rc = cps.retention(&seeds);
        let rv = v.retention(&seeds);
        println!(
            "  K={k:<3} METIS-CPS  {:5.1}/{:5.1}/{:5.1}  R_ec={:.3}  ({cps_ms:.0} ms)",
            100.0 * rc.total,
            100.0 * rc.train,
            100.0 * rc.test,
            cps.edge_cut_rate(&pair),
        );
        println!(
            "        VPS        {:5.1}/{:5.1}/{:5.1}  R_ec={:.3}  ({vps_ms:.0} ms)",
            100.0 * rv.total,
            100.0 * rv.train,
            100.0 * rv.test,
            v.edge_cut_rate(&pair),
        );
        assert!(
            rc.test >= rv.test,
            "METIS-CPS should keep more test pairs together"
        );
    }
}
