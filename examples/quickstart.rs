//! Quickstart: align two synthetic cross-lingual KGs with LargeEA.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a scaled-down IDS15K(EN-FR)-shaped benchmark, runs the full
//! two-channel pipeline (METIS-CPS mini-batches + RREA structure channel,
//! NFF name channel, data augmentation, fusion) and prints the paper's
//! headline metrics.

use largeea::core::pipeline::{LargeEa, LargeEaConfig};
use largeea::core::structure_channel::StructureChannelConfig;
use largeea::data::Preset;
use largeea::models::{ModelKind, TrainConfig};

fn main() {
    // 1. Data: 2 % of IDS15K(EN-FR) — 300 aligned entities, ~950 triples.
    let spec = Preset::Ids15kEnFr.spec(0.02);
    let pair = spec.generate();
    let seeds = pair.split_seeds(0.2, 42); // the paper's 20 % training split
    println!(
        "dataset: {} — |E_s|={}, |E_t|={}, |T_s|={}, |T_t|={}, seeds={}",
        spec.preset.name(),
        pair.source.num_entities(),
        pair.target.num_entities(),
        pair.source.num_triples(),
        pair.target.num_triples(),
        seeds.train.len(),
    );

    // 2. Configure LargeEA-R with K = 2 mini-batches.
    let cfg = LargeEaConfig {
        structure: StructureChannelConfig {
            k: 2,
            model: ModelKind::Rrea,
            train: TrainConfig {
                epochs: 50,
                dim: 64,
                ..TrainConfig::default()
            },
            ..StructureChannelConfig::default()
        },
        ..LargeEaConfig::default()
    };

    // 3. Run and report.
    let report = LargeEa::new(cfg).run(&pair, &seeds);
    println!(
        "pseudo seeds from data augmentation: {} ({:.1}% correct)",
        report.pseudo_seeds,
        100.0 * report.pseudo_seed_accuracy
    );
    println!(
        "H@1 = {:.1}%  H@5 = {:.1}%  MRR = {:.2}  ({} test pairs, {:.1}s)",
        report.eval.hits1,
        report.eval.hits5,
        report.eval.mrr,
        report.eval.evaluated,
        report.total_seconds
    );
    assert!(report.eval.hits1 > 30.0, "quickstart should align well");
}
