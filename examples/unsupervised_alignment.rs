//! Unsupervised EA (paper §3.5): align two KGs with *zero* seed alignment.
//!
//! ```sh
//! cargo run --release --example unsupervised_alignment
//! ```
//!
//! Real-world EA rarely comes with labelled seed pairs. LargeEA's
//! name-based data augmentation bootstraps supervision by taking entity
//! pairs that are *mutually* each other's most name-similar counterpart
//! (cycle consistency) as pseudo seeds, then trains the structure channel
//! on those. This example runs that mode on a DBP1M-shaped dataset and
//! compares it against the supervised run — the paper's finding is that the
//! two land within a point of each other.

use largeea::core::pipeline::{LargeEa, LargeEaConfig};
use largeea::core::structure_channel::StructureChannelConfig;
use largeea::data::Preset;
use largeea::kg::AlignmentSeeds;
use largeea::models::{ModelKind, TrainConfig};

fn config() -> LargeEaConfig {
    LargeEaConfig {
        structure: StructureChannelConfig {
            k: 4,
            model: ModelKind::GcnAlign,
            train: TrainConfig {
                epochs: 40,
                dim: 64,
                ..TrainConfig::default()
            },
            ..StructureChannelConfig::default()
        },
        ..LargeEaConfig::default()
    }
}

fn main() {
    let pair = Preset::Dbp1mEnFr.spec(0.002).generate();
    println!(
        "DBP1M-shaped pair: |E_s|={} (incl. unknowns), |E_t|={}, ground truth={}",
        pair.source.num_entities(),
        pair.target.num_entities(),
        pair.alignment.len()
    );

    // Supervised: 20 % real seeds.
    let supervised_seeds = pair.split_seeds(0.2, 7);
    let supervised = LargeEa::new(config()).run(&pair, &supervised_seeds);

    // Unsupervised: no seeds at all — DA must produce every training pair.
    let unsupervised_seeds = AlignmentSeeds {
        train: vec![],
        test: pair.alignment.clone(),
    };
    let unsupervised = LargeEa::new(config()).run(&pair, &unsupervised_seeds);

    println!(
        "supervised   : H@1 = {:.1}%  H@5 = {:.1}%  MRR = {:.2}",
        supervised.eval.hits1, supervised.eval.hits5, supervised.eval.mrr
    );
    println!(
        "unsupervised : H@1 = {:.1}%  H@5 = {:.1}%  MRR = {:.2}  \
         (DA generated {} pseudo seeds at {:.1}% accuracy)",
        unsupervised.eval.hits1,
        unsupervised.eval.hits5,
        unsupervised.eval.mrr,
        unsupervised.pseudo_seeds,
        100.0 * unsupervised.pseudo_seed_accuracy
    );
    assert!(
        unsupervised.pseudo_seed_accuracy > 0.7,
        "pseudo seeds should be mostly correct"
    );
}
