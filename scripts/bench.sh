#!/usr/bin/env bash
# Regenerates BENCH_pipeline.json — the perf baseline `largeea trace check`
# gates against (DESIGN.md §S0.5).
#
# Runs the deterministic synthetic pipeline REPEATS times at fixed seeds,
# writes per-stage medians + exact counters to BENCH_pipeline.json at the
# repo root, then immediately checks a fresh trace against the new baseline
# so a freshly seeded file is known-green on the machine that produced it.
#
# Usage: scripts/bench.sh [repeats]   (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

REPEATS="${1:-5}"
FRESH="$(mktemp -t largeea_bench_fresh.XXXXXX.json)"
trap 'rm -f "$FRESH"' EXIT

echo "== bench: ${REPEATS} repeats → BENCH_pipeline.json =="
# The baseline records the pool width it was measured under (config.threads
# + config.host_parallelism); pin LARGEEA_THREADS here to bench a width
# other than the machine default.
echo "== bench: pool width ${LARGEEA_THREADS:-auto ($(nproc 2>/dev/null || echo '?') hw)} =="
cargo run -q --release --offline -p largeea-bench --bin bench_pipeline -- \
  --repeats "$REPEATS" --out BENCH_pipeline.json --trace-out "$FRESH"

echo "== bench: checking the fresh run against the new baseline =="
cargo run -q --release --offline --bin largeea -- \
  trace check "$FRESH" --baseline BENCH_pipeline.json

echo "bench: OK"
