#!/usr/bin/env bash
# Regenerates BENCH_pipeline.json — the perf baseline `largeea trace check`
# gates against (DESIGN.md §S0.5).
#
# Runs the deterministic synthetic pipeline REPEATS times at fixed seeds,
# writes per-stage medians + exact counters to BENCH_pipeline.json at the
# repo root, then immediately checks a fresh trace against the new baseline
# so a freshly seeded file is known-green on the machine that produced it.
#
# Usage: scripts/bench.sh [repeats]   (default 5)
#
# The baseline is measured on the out-of-core path (MEM_BUDGET, default
# 1 MiB — well under the ~1.2 MiB in-RAM tracked peak of this workload) so
# it carries the deterministic mem.spill.* counters; set MEM_BUDGET=0 to
# bench the unbounded in-RAM path instead.
set -euo pipefail
cd "$(dirname "$0")/.."

REPEATS="${1:-5}"
MEM_BUDGET="${MEM_BUDGET:-1048576}"
FRESH="$(mktemp -t largeea_bench_fresh.XXXXXX.json)"
trap 'rm -f "$FRESH"' EXIT

echo "== bench: ${REPEATS} repeats → BENCH_pipeline.json =="
# The baseline records the pool width it was measured under (config.threads
# + config.host_parallelism); pin LARGEEA_THREADS here to bench a width
# other than the machine default.
echo "== bench: pool width ${LARGEEA_THREADS:-auto ($(nproc 2>/dev/null || echo '?') hw)} =="
cargo run -q --release --offline -p largeea-bench --bin bench_pipeline -- \
  --repeats "$REPEATS" --mem-budget "$MEM_BUDGET" \
  --out BENCH_pipeline.json --trace-out "$FRESH"

echo "== bench: checking the fresh run against the new baseline =="
cargo run -q --release --offline --bin largeea -- \
  trace check "$FRESH" --baseline BENCH_pipeline.json

echo "== bench: kernel dispatch micro-benchmarks → kernel.* stages =="
# Times each dense kernel under the scalar reference and the dispatched
# ISA (DESIGN.md §S0.11), merges the dispatched medians + speedups into
# the baseline, and fails if dot/l1/matmul don't beat scalar while a SIMD
# ISA is active.
# cargo bench runs the binary with CWD = the package dir; hand it an
# absolute path to the repo-root baseline.
cargo bench -q --offline -p largeea-bench --bench kernel_bench -- \
  --merge-into "$PWD/BENCH_pipeline.json" --require-win

echo "bench: OK"
