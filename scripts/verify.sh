#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md).
#
# The build is hermetic — every dependency is an in-tree path dependency —
# so everything below runs with --offline against an empty registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

echo "== test (serial gate: LARGEEA_THREADS=1) =="
# Kernels promise bit-identical results for any pool width; running the
# whole suite again with a width-1 global pool catches code that only
# works when the pool actually fans out (or only when it doesn't).
LARGEEA_THREADS=1 cargo test -q --offline --workspace

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "== trace smoke =="
# the full loop on a tiny dataset: traced run → summarize → self-diff
# (exactly zero deltas, so --threshold-pct 0 must exit 0)
SMOKE="$(mktemp -d -t largeea_smoke.XXXXXX)"
trap 'rm -rf "$SMOKE"' EXIT
L="target/release/largeea"
"$L" generate --preset ids15k-en-fr --scale 0.01 --out "$SMOKE/data" > /dev/null
"$L" align --data "$SMOKE/data" --model gcn --k 2 --epochs 8 --dim 16 \
  --trace-out "$SMOKE/run.json" > /dev/null
"$L" trace summarize "$SMOKE/run.json" > /dev/null
"$L" trace diff "$SMOKE/run.json" "$SMOKE/run.json" --threshold-pct 0 > /dev/null

echo "== crash-recovery smoke =="
# kill a checkpointed run with an injected failpoint, resume it, and demand
# a byte-identical similarity matrix (DESIGN.md §S0.7)
"$L" align --data "$SMOKE/data" --model gcn --k 2 --epochs 8 --dim 16 \
  --checkpoint-dir "$SMOKE/ckpt_base" --sim-out "$SMOKE/base.sim" > /dev/null
if LARGEEA_FAILPOINTS=ckpt.sim=panic@1 "$L" align --data "$SMOKE/data" \
  --model gcn --k 2 --epochs 8 --dim 16 \
  --checkpoint-dir "$SMOKE/ckpt_crash" > /dev/null 2>&1; then
  echo "crash smoke: injected failpoint did not kill the run" >&2
  exit 1
fi
"$L" align --data "$SMOKE/data" --model gcn --k 2 --epochs 8 --dim 16 \
  --checkpoint-dir "$SMOKE/ckpt_crash" --resume --sim-out "$SMOKE/resumed.sim" > /dev/null
cmp "$SMOKE/base.sim" "$SMOKE/resumed.sim"
"$L" ckpt inspect "$SMOKE/ckpt_crash" > /dev/null

echo "== mem-budget smoke =="
# a tightly bounded run must spill, succeed, and reproduce base.sim
# byte-for-byte; an impossible budget must fail with the typed error
# (DESIGN.md §S0.8)
"$L" align --data "$SMOKE/data" --model gcn --k 2 --epochs 8 --dim 16 \
  --mem-budget 16M --spill-dir "$SMOKE/spill" \
  --sim-out "$SMOKE/bounded.sim" > /dev/null
cmp "$SMOKE/base.sim" "$SMOKE/bounded.sim"
if [ -d "$SMOKE/spill" ]; then
  echo "mem smoke: spill dir was not cleaned up" >&2
  exit 1
fi
if "$L" align --data "$SMOKE/data" --model gcn --k 2 --epochs 8 --dim 16 \
  --mem-budget 16K > /dev/null 2>&1; then
  echo "mem smoke: impossible budget did not fail" >&2
  exit 1
fi

echo "== live-telemetry smoke =="
# a run with --live-dir must leave a final snapshot byte-identical to
# --trace-out, and the whole offline tooling loop must accept it
# (DESIGN.md §S0.9)
"$L" align --data "$SMOKE/data" --model gcn --k 2 --epochs 8 --dim 16 \
  --live-dir "$SMOKE/live" --live-every 8 \
  --trace-out "$SMOKE/live_run.json" > /dev/null
cmp "$SMOKE/live/live.trace.json" "$SMOKE/live_run.json"
"$L" trace summarize "$SMOKE/live/live.trace.json" > /dev/null
"$L" trace tail "$SMOKE/live" --once > /dev/null
"$L" trace expo "$SMOKE/live/live.trace.json" | grep -q '^largeea_'

echo "== heap-attribution smoke =="
# span-attributed heap profiling (DESIGN.md §S0.10): a --mem-audit run on
# the CI-sized DBP1M shape must reconcile tracked vs measured heap peaks;
# `trace heap` and `trace expo` renderings must be byte-stable across
# same-seed single-thread runs; and a deliberately un-charged reservation
# (the LARGEEA_HEAP_LEAK test hook) must fail the audit, not pass it.
"$L" generate --preset dbp1m-ci --scale 1.0 --out "$SMOKE/dbp_ci" > /dev/null
for i in a b; do
  LARGEEA_THREADS=1 "$L" align --data "$SMOKE/dbp_ci" --model gcn --k 4 \
    --epochs 4 --dim 16 --mem-audit \
    --trace-out "$SMOKE/heap_$i.json" > "$SMOKE/heap_$i.out"
  grep -q 'mem-audit OK: tracked peak' "$SMOKE/heap_$i.out"
  "$L" trace heap "$SMOKE/heap_$i.json" > "$SMOKE/heap_$i.txt"
  "$L" trace heap "$SMOKE/heap_$i.json" --folded > "$SMOKE/heap_$i.folded"
  "$L" trace expo "$SMOKE/heap_$i.json" > "$SMOKE/heap_$i.expo"
done
cmp "$SMOKE/heap_a.txt" "$SMOKE/heap_b.txt"
cmp "$SMOKE/heap_a.folded" "$SMOKE/heap_b.folded"
cmp "$SMOKE/heap_a.expo" "$SMOKE/heap_b.expo"
grep -q '^largeea_heap_live ' "$SMOKE/heap_a.expo"
if LARGEEA_HEAP_LEAK=$((1<<31)) "$L" align --data "$SMOKE/dbp_ci" --model gcn \
  --k 4 --epochs 4 --dim 16 --mem-audit > /dev/null 2>&1; then
  echo "heap smoke: the deliberate leak did not fail the audit" >&2
  exit 1
fi

echo "== kernel-dispatch smoke =="
# runtime SIMD dispatch (DESIGN.md §S0.11): a scalar-forced run
# (LARGEEA_NO_SIMD=1) must reproduce the default run's similarity matrix
# byte-for-byte — the SIMD kernels are transcriptions, not approximations.
# Same contract for the i8-quantized SENS scan (--quantize), whose exact
# re-rank converges to the exact scan on this small shape.
"$L" align --data "$SMOKE/dbp_ci" --model gcn --k 4 --epochs 4 --dim 16 \
  --sim-out "$SMOKE/simd.sim" --trace-out "$SMOKE/simd.json" > /dev/null
LARGEEA_NO_SIMD=1 "$L" align --data "$SMOKE/dbp_ci" --model gcn --k 4 \
  --epochs 4 --dim 16 --sim-out "$SMOKE/nosimd.sim" > /dev/null
cmp "$SMOKE/simd.sim" "$SMOKE/nosimd.sim"
grep -q '"kernel.isa"' "$SMOKE/simd.json"
"$L" align --data "$SMOKE/dbp_ci" --model gcn --k 4 --epochs 4 --dim 16 \
  --quantize --sim-out "$SMOKE/quant.sim" --trace-out "$SMOKE/quant.json" > /dev/null
cmp "$SMOKE/simd.sim" "$SMOKE/quant.sim"
grep -q 'quant.shortlist' "$SMOKE/quant.json"

echo "== chaos smoke =="
# transient-fault tolerance (DESIGN.md §S0.12), one failpoint per injection
# mode at a fixed seed. transient: absorbed by bounded retry — bit-identical
# results, honest retry.* counters in the trace.
LARGEEA_FAILPOINTS=ckpt.sim=transient@1 "$L" align --data "$SMOKE/data" \
  --model gcn --k 2 --epochs 8 --dim 16 \
  --checkpoint-dir "$SMOKE/ckpt_transient" --sim-out "$SMOKE/transient.sim" \
  --trace-out "$SMOKE/transient.json" > /dev/null
cmp "$SMOKE/base.sim" "$SMOKE/transient.sim"
grep -q '"retry.attempts"' "$SMOKE/transient.json"
# err: a fatal injected checkpoint fault is a typed death with its
# documented per-variant exit code (RunError::Ckpt → 4)
set +e
LARGEEA_FAILPOINTS=ckpt.emb=err@1 "$L" align --data "$SMOKE/data" \
  --model gcn --k 2 --epochs 8 --dim 16 \
  --checkpoint-dir "$SMOKE/ckpt_err" > /dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 4 ]; then
  echo "chaos smoke: injected ckpt error exited $code, want 4" >&2
  exit 1
fi
# panic / partial: injected hard deaths, after which a resume must
# reproduce the baseline byte-for-byte (no durable partial artifacts)
for mode in panic partial; do
  if LARGEEA_FAILPOINTS=ckpt.emb=$mode@1 "$L" align --data "$SMOKE/data" \
    --model gcn --k 2 --epochs 8 --dim 16 \
    --checkpoint-dir "$SMOKE/ckpt_$mode" > /dev/null 2>&1; then
    echo "chaos smoke: $mode failpoint did not kill the run" >&2
    exit 1
  fi
  "$L" align --data "$SMOKE/data" --model gcn --k 2 --epochs 8 --dim 16 \
    --checkpoint-dir "$SMOKE/ckpt_$mode" --resume \
    --sim-out "$SMOKE/chaos_$mode.sim" > /dev/null
  cmp "$SMOKE/base.sim" "$SMOKE/chaos_$mode.sim"
done
# --degraded-ok: losing the name channel to a fatal spill fault completes
# structure-only and says so — on stdout and as degraded.* in the trace
LARGEEA_FAILPOINTS=spill.write=err@1 "$L" align --data "$SMOKE/data" \
  --model gcn --k 2 --epochs 8 --dim 16 --spill-dir "$SMOKE/spill_deg" \
  --degraded-ok --trace-out "$SMOKE/degraded.json" > "$SMOKE/degraded.out"
grep -q 'DEGRADED' "$SMOKE/degraded.out"
grep -q 'degraded.name_channel' "$SMOKE/degraded.json"
"$L" failpoints list | grep -q 'spill.write'

echo "verify: OK"
