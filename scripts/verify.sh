#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md).
#
# The build is hermetic — every dependency is an in-tree path dependency —
# so everything below runs with --offline against an empty registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "verify: OK"
