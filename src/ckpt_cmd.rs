//! The `largeea ckpt` subcommand — offline inspection of checkpoint
//! directories (DESIGN.md §S0.7).
//!
//! `inspect <dir>` prints the manifest (format version, config hash, seed,
//! bootstrap rounds, completed stages with on-disk artifact sizes) and, when
//! present, the latest per-epoch training progress. It never validates the
//! manifest against a run configuration — that is `align --resume`'s job —
//! so it works on checkpoints from any run.

use largeea::common::json::Json;
use largeea::core::checkpoint::{read_manifest, read_progress};
use std::path::Path;
use std::process::ExitCode;

const CKPT_USAGE: &str = "largeea ckpt — inspect crash-safe checkpoint directories

USAGE:
  largeea ckpt inspect <dir>
  largeea ckpt inspect --help

Prints the checkpoint manifest (config hash, seed, rounds, completed
stages + artifact sizes) and the latest training progress, if any.
Checkpoints are written by `largeea align --checkpoint-dir <dir>` and
resumed with `--resume` (DESIGN.md §S0.7).

Every artifact (`MANIFEST.ckpt`, `<stage>.ckpt`, and the transient
`<key>.spill` files of memory-bounded runs) is a CRC-framed LEAF1 file;
the byte-level layout, payload encodings, stage-key grammar and
durability classes are documented in docs/ARTIFACT_FORMAT.md.";

/// Entry point from `main` (args exclude the leading `ckpt`).
pub fn cmd_ckpt(args: &[String]) -> ExitCode {
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{CKPT_USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args {
        [sub, help] if sub == "inspect" && (help == "--help" || help == "-h") => {
            println!("{CKPT_USAGE}");
            Ok(())
        }
        [sub, dir] if sub == "inspect" => inspect(Path::new(dir)),
        [sub, ..] if sub == "inspect" => Err("inspect needs exactly one <dir> argument".into()),
        [other, ..] => Err(format!("unknown ckpt subcommand {other:?}")),
        [] => Err("ckpt needs a subcommand (inspect)".into()),
    }
}

fn inspect(dir: &Path) -> Result<(), String> {
    // read_manifest's errors already name the file (common::fsio context)
    let manifest = read_manifest(dir).map_err(|e| e.to_string())?;
    let u64_field = |name: &str| manifest.get(name).and_then(Json::as_u64);
    println!("checkpoint {}", dir.display());
    println!(
        "  version     {}",
        u64_field("version").ok_or("manifest has no version")?
    );
    println!(
        "  config_hash {:#018x}",
        u64_field("config_hash").ok_or("manifest has no config_hash")?
    );
    println!(
        "  seed        {}",
        u64_field("seed").ok_or("manifest has no seed")?
    );
    println!(
        "  rounds      {}",
        u64_field("rounds").ok_or("manifest has no rounds")?
    );
    let stages = manifest
        .get("stages")
        .and_then(Json::as_arr)
        .ok_or("manifest has no stages")?;
    println!("  stages      {} completed", stages.len());
    for s in stages {
        let Some(key) = s.as_str() else { continue };
        let size = std::fs::metadata(dir.join(format!("{key}.ckpt")))
            .map(|m| format!("{:>12}", m.len()))
            .unwrap_or_else(|_| format!("{:>12}", "missing!"));
        println!("    {size} B  {key}");
    }
    match read_progress(dir) {
        Ok(p) => {
            let f = |name: &str| p.get(name).and_then(Json::as_u64).unwrap_or(0);
            println!(
                "  progress    round {} batch {} epoch {} loss {:.6}",
                f("round"),
                f("batch"),
                f("epoch"),
                p.get("loss").and_then(Json::as_f64).unwrap_or(f64::NAN)
            );
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("  progress    (none recorded)");
        }
        Err(e) => println!("  progress    unreadable: {e}"),
    }
    Ok(())
}
