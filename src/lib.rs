//! # largeea — LargeEA reproduced in pure Rust
//!
//! Facade crate for the workspace reproducing *LargeEA: Aligning Entities
//! for Large-scale Knowledge Graphs* (VLDB 2021). Every subsystem is
//! re-exported under one roof so downstream users depend on a single crate:
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`common`] | `largeea-common` | zero-dependency substrate: PRNG, JSON emitter, test harness, bench timer |
//! | [`kg`] | `largeea-kg` | KG storage, alignment pairs, OpenEA IO |
//! | [`partition`] | `largeea-partition` | multilevel partitioner, METIS-CPS, VPS, mini-batches |
//! | [`tensor`] | `largeea-tensor` | matrices, autograd, Adam |
//! | [`text`] | `largeea-text` | name normalisation, hash encoder, MinHash-LSH, Levenshtein |
//! | [`sim`] | `largeea-sim` | top-k search, sparse similarity matrices |
//! | [`models`] | `largeea-models` | GCN-Align, RREA, baselines, trainer |
//! | [`data`] | `largeea-data` | IDS15K/IDS100K/DBP1M-shaped synthetic benchmarks |
//! | [`core`] | `largeea-core` | the LargeEA framework: channels, DA, fusion, metrics |
//! | [`bench`] | `largeea-bench` | experiment harness + perf baselines (`BENCH_*.json`) |
//!
//! ## One-minute tour
//!
//! ```
//! use largeea::core::pipeline::{LargeEa, LargeEaConfig};
//! use largeea::core::structure_channel::StructureChannelConfig;
//! use largeea::data::Preset;
//! use largeea::models::{ModelKind, TrainConfig};
//!
//! // a small deterministic benchmark with the IDS15K(EN-FR) shape
//! let pair = Preset::Ids15kEnFr.spec(0.01).generate();
//! let seeds = pair.split_seeds(0.2, 42);
//!
//! let cfg = LargeEaConfig {
//!     structure: StructureChannelConfig {
//!         k: 2,
//!         model: ModelKind::GcnAlign,
//!         train: TrainConfig { epochs: 10, dim: 16, ..TrainConfig::default() },
//!         ..StructureChannelConfig::default()
//!     },
//!     ..LargeEaConfig::default()
//! };
//! let report = LargeEa::new(cfg).run(&pair, &seeds);
//! assert_eq!(report.eval.evaluated, seeds.test.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

// Install the instrumented allocator for every binary that links the
// facade: the `largeea` CLI, its integration tests, and doctests. This is
// what gives `--mem-audit` and `trace heap` a measured ground truth — the
// attribute itself is safe code; the audited `unsafe impl` lives in
// `largeea_common::alloc`.
#[global_allocator]
static ALLOC: largeea_common::alloc::CountingAlloc = largeea_common::alloc::CountingAlloc;

pub use largeea_bench as bench;
pub use largeea_common as common;
pub use largeea_core as core;
pub use largeea_data as data;
pub use largeea_kg as kg;
pub use largeea_models as models;
pub use largeea_partition as partition;
pub use largeea_sim as sim;
pub use largeea_tensor as tensor;
pub use largeea_text as text;
