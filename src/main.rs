//! `largeea` — command-line entity alignment.
//!
//! ```text
//! largeea generate  --preset ids15k-en-fr --scale 0.05 --out data/
//! largeea stats     --data data/
//! largeea partition --data data/ --k 5 --strategy cps
//! largeea align     --data data/ --model rrea --k 5 --out predictions.tsv
//! largeea eval      --data data/ --predictions predictions.tsv
//! ```
//!
//! `--data` directories use the OpenEA layout (`rel_triples_1`,
//! `rel_triples_2`, `ent_links`, optional `ent_labels_*`); `align` with
//! `--unsupervised` runs the paper's zero-seed mode.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ckpt_cmd;
mod trace_cmd;

use largeea::common::fmt_bytes;
use largeea::common::json::ToJson;
use largeea::common::obs::{LiveConfig, Recorder};
use largeea::core::checkpoint::Checkpoint;
use largeea::core::pipeline::{ExecOptions, LargeEa, LargeEaConfig, RunError};
use largeea::core::structure_channel::{Partitioner, StructureChannel, StructureChannelConfig};
use largeea::core::NameChannelConfig;
use largeea::data::Preset;
use largeea::kg::{io, AlignmentSeeds, EntityId, KgPair, KgStats};
use largeea::models::{ModelKind, TrainConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "largeea — LargeEA entity alignment (VLDB 2021, reproduced in Rust)

USAGE:
  largeea generate  --preset <name> [--scale f] [--seed-ratio f] --out <dir>
  largeea stats     --data <dir>
  largeea partition --data <dir> [--k n] [--strategy cps|vps] [--seed-ratio f]
                    [--trace-out <file>]
  largeea align     --data <dir> [--model gcn|rrea|mtranse] [--k n]
                    [--epochs n] [--dim n] [--seed-ratio f] [--unsupervised]
                    [--csls n] [--rounds n] [--analysis] [--out <file>] [--sim-out <file>]
                    [--trace-out <file>] [--checkpoint-dir <dir>] [--resume]
                    [--mem-budget <bytes>] [--spill-dir <dir>] [--mem-audit]
                    [--live-dir <dir>] [--live-every n] [--quantize]
                    [--degraded-ok]
  largeea eval      --data <dir> --predictions <file>
  largeea failpoints list
  largeea ckpt      inspect <dir>
  largeea trace     summarize <trace.json>
  largeea trace     diff <a.json> <b.json> [--threshold-pct f] [--min-seconds f]
  largeea trace     flame <trace.json>
  largeea trace     check <trace.json> --baseline <BENCH.json> [--tolerance-pct f]
  largeea trace     tail <dir|live.trace.json> [--once] [--interval-ms n]
  largeea trace     expo <trace.json>
  largeea trace     heap <trace.json> [--top n] [--folded]

PRESETS: ids15k-en-fr  ids15k-en-de  ids100k-en-fr  ids100k-en-de
         dbp1m-en-fr   dbp1m-en-de   dbp1m-ci

`--trace-out` writes the run's span/metric trace as JSON (DESIGN.md §S0.5);
set LARGEEA_LOG=stage|detail|trace to echo spans to stderr as they close.
`trace` analyses those files: wall-clock trees with derived throughputs,
span-by-span diffs with CI gating, folded flamegraph stacks, and budget
checks against the BENCH_pipeline.json baseline (scripts/bench.sh).

`--checkpoint-dir` makes `align` checkpoint every completed pipeline stage
into a crash-safe run directory (DESIGN.md §S0.7); `--resume` continues an
interrupted run, skipping completed stages bit-identically. `ckpt inspect`
prints a checkpoint directory's manifest and training progress.

`--mem-budget <bytes>` (suffixes K/M/G, 1024-based) runs `align` out of
core (DESIGN.md §S0.8): intermediate blocks spill to `--spill-dir`
(default: a per-process directory under the system temp dir, announced as
the `spill.dir` field of the trace's `pipeline` span) and the run fails
fast with a typed error if tracked live bytes would pass the budget.
Results are bit-identical to the unbounded run.

`--mem-audit` closes the loop on those tracked numbers (DESIGN.md §S0.10):
the binary's instrumented allocator measures the run's real peak heap
growth, and the run fails with a typed error when measured and tracked
peaks drift past tolerance. Per-span allocation attribution lands in the
trace (`alloc.bytes`/`alloc.count`/`alloc.peak` fields) — render it with
`largeea trace heap` (allocation tree, top-N table, `--folded` flamegraph
stacks).

`--quantize` runs the name channel's SENS scan on i8-quantized embeddings
with an exact f32 re-rank of a c·k shortlist (DESIGN.md §S0.11) — 4× less
scan bandwidth, identical results whenever the true top-k survive the
shortlist. All dense kernels dispatch to the best available SIMD ISA at
runtime (see the `kernel.isa` field on the trace's `pipeline` span);
results are bit-identical to the scalar reference, which
LARGEEA_NO_SIMD=1 forces for A/B verification.

`--live-dir <dir>` turns on live telemetry (DESIGN.md §S0.9): every
`--live-every` sampler ticks (default 32; ticks are recorded span exits,
so sampling is deterministic for a fixed seed) the run captures a metric
sample and atomically rewrites `<dir>/live.trace.json` — watch it from
another terminal with `largeea trace tail <dir>`. `trace expo` renders a
trace's metric tables as Prometheus text exposition.

`--degraded-ok` lets `align` finish on partial results when transient
I/O faults outlive the retry budget (DESIGN.md §S0.12): a mini-batch
whose spill/checkpoint writes keep failing is quarantined (recorded in
the checkpoint manifest, dropped from M_s), and a fully lost channel
degrades the run to the surviving channel. Degradations are stamped as
`degraded.*` counters/fields in the trace and reported on stdout —
never silent. `failpoints list` prints every fault-injection site that
`LARGEEA_FAILPOINTS=<name>=err|panic|partial|transient[@N]` can arm.

EXIT CODES (documented contract, asserted by tests/cli.rs):
  0  success
  1  generic error (I/O, bad input data, invalid flag value)
  2  usage error (unknown command or malformed flags)
  3  memory budget exceeded (RunError::Budget)
  4  checkpoint error (RunError::Ckpt)
  5  heap audit drift (RunError::Audit)
  6  spill I/O error (RunError::Spill)
  7  retries exhausted on a transient fault (RunError::Exhausted)
  8  degraded run lost every channel (RunError::Quarantined)

Every command is deterministic for fixed inputs and flags.";

/// A CLI failure with its documented process exit code (see `USAGE`).
enum CliError {
    /// Malformed command line: unknown command, bad flag syntax. Exit 2.
    Usage(String),
    /// A typed pipeline failure; exit code is per-variant (3..=8).
    Run(Box<RunError>),
    /// Everything else (I/O, bad input, invalid flag values). Exit 1.
    Other(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Other(msg)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Other(m) => f.write_str(m),
            CliError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl CliError {
    /// The documented process exit code for this failure.
    fn code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Other(_) => 1,
            CliError::Run(e) => match e.as_ref() {
                RunError::Budget(_) => 3,
                RunError::Ckpt(_) => 4,
                RunError::Audit(_) => 5,
                RunError::Spill(_) => 6,
                RunError::Exhausted(_) => 7,
                RunError::Quarantined(_) => 8,
            },
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // `trace` takes positional file arguments and encodes its verdict in
    // the exit code, so it owns its own parsing and returns directly.
    if command == "trace" {
        return trace_cmd::cmd_trace(&args[1..]);
    }
    // `ckpt` likewise takes a positional directory argument.
    if command == "ckpt" {
        return ckpt_cmd::cmd_ckpt(&args[1..]);
    }
    // `failpoints` takes a positional subcommand.
    if command == "failpoints" {
        return cmd_failpoints(&args[1..]);
    }
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result: Result<(), CliError> = match command.as_str() {
        "generate" => cmd_generate(&flags).map_err(CliError::Other),
        "stats" => cmd_stats(&flags).map_err(CliError::Other),
        "partition" => cmd_partition(&flags).map_err(CliError::Other),
        "align" => cmd_align(&flags),
        "eval" => cmd_eval(&flags).map_err(CliError::Other),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.code())
        }
    }
}

/// `largeea failpoints list` — every fault-injection site the binary
/// registers, in the fixed order the chaos sweep enumerates them
/// (`largeea::core::registered_failpoints`). One `name\tsite` line each.
fn cmd_failpoints(rest: &[String]) -> ExitCode {
    match rest.first().map(String::as_str) {
        Some("list") => {
            use std::fmt::Write as _;
            let mut out = String::new();
            for fp in largeea::core::registered_failpoints() {
                writeln!(out, "{:<16} {}", fp.name, fp.site).unwrap();
            }
            // one EPIPE-tolerant write: `failpoints list | grep -q …` closes
            // the pipe as soon as it matches, which must not be a panic
            let _ = std::io::Write::write_all(&mut std::io::stdout(), out.as_bytes());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: failpoints takes the subcommand `list`, got {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got {a:?}"));
        };
        // boolean flags take no value
        if name == "unsupervised"
            || name == "analysis"
            || name == "resume"
            || name == "mem-audit"
            || name == "quantize"
            || name == "degraded-ok"
        {
            flags.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_owned(), value.clone());
    }
    Ok(flags)
}

fn required<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("--{name} is required"))
}

fn parse_or<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} got invalid value {v:?}")),
    }
}

fn preset_by_name(name: &str) -> Result<Preset, String> {
    Ok(match name {
        "ids15k-en-fr" => Preset::Ids15kEnFr,
        "ids15k-en-de" => Preset::Ids15kEnDe,
        "ids100k-en-fr" => Preset::Ids100kEnFr,
        "ids100k-en-de" => Preset::Ids100kEnDe,
        "dbp1m-en-fr" => Preset::Dbp1mEnFr,
        "dbp1m-en-de" => Preset::Dbp1mEnDe,
        "dbp1m-ci" => Preset::Dbp1mCi,
        other => return Err(format!("unknown preset {other:?} (see --help)")),
    })
}

fn model_by_name(name: &str) -> Result<ModelKind, String> {
    Ok(match name {
        "gcn" | "gcn-align" => ModelKind::GcnAlign,
        "rrea" => ModelKind::Rrea,
        "mtranse" => ModelKind::MTransE,
        other => return Err(format!("unknown model {other:?} (gcn|rrea|mtranse)")),
    })
}

/// Parses a byte size with optional 1024-based `K`/`M`/`G` suffix
/// (case-insensitive): `"16M"` → 16 MiB, `"1073741824"` → 1 GiB.
fn parse_bytes(v: &str) -> Result<usize, String> {
    let v = v.trim();
    let bad = || format!("expected a byte count like 512M or 2G, got {v:?}");
    let (digits, mult) = match v.char_indices().last().ok_or_else(bad)? {
        (i, 'k') | (i, 'K') => (&v[..i], 1usize << 10),
        (i, 'm') | (i, 'M') => (&v[..i], 1 << 20),
        (i, 'g') | (i, 'G') => (&v[..i], 1 << 30),
        _ => (v, 1),
    };
    let n: usize = digits.parse().map_err(|_| bad())?;
    n.checked_mul(mult).ok_or_else(bad)
}

fn load_data(flags: &Flags) -> Result<KgPair, String> {
    let dir = required(flags, "data")?;
    io::load_pair(Path::new(dir), "SRC", "TGT").map_err(|e| format!("loading {dir}: {e}"))
}

fn split(flags: &Flags, pair: &KgPair) -> Result<AlignmentSeeds, String> {
    let ratio: f64 = parse_or(flags, "seed-ratio", 0.2)?;
    if !(0.0..=1.0).contains(&ratio) {
        return Err(format!("--seed-ratio must lie in [0,1], got {ratio}"));
    }
    Ok(pair.split_seeds(ratio, 0x5EED))
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let preset = preset_by_name(required(flags, "preset")?)?;
    let scale: f64 = parse_or(flags, "scale", 0.05)?;
    let out = PathBuf::from(required(flags, "out")?);
    let pair = preset.spec(scale).generate();
    io::save_pair(&pair, &out).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote {} at scale {scale}: |E_s|={}, |E_t|={}, |T_s|={}, |T_t|={}, links={} → {}",
        preset.name(),
        pair.source.num_entities(),
        pair.target.num_entities(),
        pair.source.num_triples(),
        pair.target.num_triples(),
        pair.alignment.len(),
        out.display()
    );
    Ok(())
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let pair = load_data(flags)?;
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "side", "entities", "relations", "triples", "max-deg", "isolated"
    );
    for (label, kg) in [("source", &pair.source), ("target", &pair.target)] {
        let s = KgStats::of(kg);
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>10} {:>8}",
            label, s.entities, s.relations, s.triples, s.max_degree, s.isolated
        );
    }
    let (us, ut) = pair.unknown_fraction();
    println!(
        "ground-truth links: {} (unknown entities: {:.1}% source, {:.1}% target)",
        pair.alignment.len(),
        100.0 * us,
        100.0 * ut
    );
    Ok(())
}

/// Writes `rec`'s trace as JSON to `--trace-out` when the flag is present.
fn write_trace(flags: &Flags, rec: &Recorder) -> Result<(), String> {
    let Some(path) = flags.get("trace-out") else {
        return Ok(());
    };
    let trace = rec.trace();
    std::fs::write(path, trace.to_json_string()).map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "wrote run trace ({} spans) → {path}",
        trace.span_count_total()
    );
    Ok(())
}

fn cmd_partition(flags: &Flags) -> Result<(), String> {
    let pair = load_data(flags)?;
    let seeds = split(flags, &pair)?;
    let k: usize = parse_or(flags, "k", 5)?;
    let strategy = match flags.get("strategy").map(String::as_str).unwrap_or("cps") {
        "cps" | "metis-cps" => Partitioner::MetisCps,
        "vps" => Partitioner::Vps,
        other => return Err(format!("unknown strategy {other:?} (cps|vps)")),
    };
    let sc = StructureChannel::new(StructureChannelConfig {
        k,
        partitioner: strategy,
        ..StructureChannelConfig::default()
    });
    let rec = Recorder::from_env();
    let batches = sc.make_batches_traced(&pair, &seeds, &rec);
    let r = batches.retention(&seeds);
    println!(
        "K={k} {strategy:?}: retention total {:.1}% / train {:.1}% / test {:.1}%, edge-cut rate {:.3}",
        100.0 * r.total,
        100.0 * r.train,
        100.0 * r.test,
        batches.edge_cut_rate(&pair)
    );
    for b in &batches.batches {
        println!(
            "  batch {:>2}: {:>7} source + {:>7} target entities, {:>6} train pairs",
            b.index,
            b.source_entities.len(),
            b.target_entities.len(),
            b.train_pairs.len()
        );
    }
    write_trace(flags, &rec)
}

fn cmd_align(flags: &Flags) -> Result<(), CliError> {
    let pair = load_data(flags)?;
    let unsupervised = flags.contains_key("unsupervised");
    let seeds = if unsupervised {
        AlignmentSeeds {
            train: vec![],
            test: pair.alignment.clone(),
        }
    } else {
        split(flags, &pair)?
    };
    let model = model_by_name(flags.get("model").map(String::as_str).unwrap_or("rrea"))?;
    let cfg = LargeEaConfig {
        structure: StructureChannelConfig {
            k: parse_or(flags, "k", 5)?,
            model,
            train: TrainConfig {
                epochs: parse_or(flags, "epochs", 50)?,
                dim: parse_or(flags, "dim", 64)?,
                ..TrainConfig::default()
            },
            ..StructureChannelConfig::default()
        },
        csls_k: flags
            .get("csls")
            .map(|v| v.parse().map_err(|_| format!("--csls got {v:?}")))
            .transpose()?,
        name: NameChannelConfig {
            quantize: flags.contains_key("quantize"),
            ..NameChannelConfig::default()
        },
        ..LargeEaConfig::default()
    };
    let rounds: usize = parse_or(flags, "rounds", 1)?.max(1);
    let rec = Recorder::from_env();
    if flags.contains_key("resume") && !flags.contains_key("checkpoint-dir") {
        return Err("--resume needs --checkpoint-dir".to_owned().into());
    }
    let mem_budget = flags
        .get("mem-budget")
        .map(|v| parse_bytes(v).map_err(|e| format!("--mem-budget: {e}")))
        .transpose()?;
    // a budget without an explicit spill dir gets a per-process tempdir,
    // announced in the trace as the pipeline span's `spill.dir` field
    let mut exec = ExecOptions::from_flags(mem_budget, flags.get("spill-dir").map(PathBuf::from));
    exec.mem_audit = flags.contains_key("mem-audit");
    exec.supervision.degraded_ok = flags.contains_key("degraded-ok");
    if flags.contains_key("live-every") && !flags.contains_key("live-dir") {
        return Err("--live-every needs --live-dir".to_owned().into());
    }
    if let Some(dir) = flags.get("live-dir").map(PathBuf::from) {
        let every: u64 = parse_or(flags, "live-every", 32)?;
        if every == 0 {
            return Err("--live-every must be at least 1".to_owned().into());
        }
        std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        rec.enable_live(LiveConfig {
            every,
            dir: Some(dir),
            ..LiveConfig::default()
        });
    }
    let report = match flags.get("checkpoint-dir") {
        Some(dir) => {
            let meta = cfg.run_meta(&seeds, rounds);
            let resume = flags.contains_key("resume");
            let mut ckpt = Checkpoint::open(Path::new(dir), meta, resume, &rec)
                .map_err(|e| CliError::Run(Box::new(RunError::Ckpt(e))))?;
            LargeEa::new(cfg)
                .run_exec(&pair, &seeds, rounds, &rec, Some(&mut ckpt), &exec)
                .map_err(|e| CliError::Run(Box::new(e)))?
        }
        None => LargeEa::new(cfg)
            .run_exec(&pair, &seeds, rounds, &rec, None, &exec)
            .map_err(|e| CliError::Run(Box::new(e)))?,
    };
    if report.degraded.is_degraded() {
        println!(
            "DEGRADED: completed without {} (see the trace's degraded.* fields)",
            report.degraded.units().join(", ")
        );
    }
    if exec.mem_budget.is_some() || exec.spill_dir.is_some() {
        println!(
            "tracked peak {}{}",
            fmt_bytes(report.tracked_peak_bytes),
            exec.mem_budget
                .map(|b| format!(" (budget {})", fmt_bytes(b)))
                .unwrap_or_default()
        );
    }
    if exec.mem_audit {
        // run_exec already failed with a typed RunError::Audit if the
        // books were broken; reaching here means they reconcile.
        let measured = report
            .measured_heap_peak_bytes
            .expect("a passed audit has a measured peak");
        println!(
            "mem-audit OK: tracked peak {} vs measured heap peak {}",
            fmt_bytes(report.tracked_peak_bytes),
            fmt_bytes(measured),
        );
    }
    println!(
        "H@1 {:.1}%  H@5 {:.1}%  MRR {:.2}  ({} test pairs, {:.1}s, pseudo seeds {} @ {:.1}%)",
        report.eval.hits1,
        report.eval.hits5,
        report.eval.mrr,
        report.eval.evaluated,
        report.total_seconds,
        report.pseudo_seeds,
        100.0 * report.pseudo_seed_accuracy,
    );
    if flags.contains_key("analysis") {
        println!("\nH@1 by source-entity degree:");
        for b in largeea::core::accuracy_by_degree(&pair, &report.sim, &seeds.test) {
            if b.pairs > 0 {
                println!(
                    "  degree {:>5}: {:>5} pairs, H@1 {:>5.1}%",
                    b.bucket, b.pairs, b.hits1
                );
            }
        }
        if let (Some(m_s), Some(m_n)) = (&report.m_s, &report.m_n) {
            let a = largeea::core::attribute_channels(m_s, m_n, &report.sim, &seeds.test);
            println!(
                "channel attribution: both {} / structure-only {} / name-only {} / neither {} \
                 (fusion rescued {}, broke {})",
                a.both, a.structure_only, a.name_only, a.neither, a.fusion_rescued, a.fusion_broke
            );
        }
    }
    if let Some(path) = flags.get("out") {
        let decoded = report.sim.greedy_one_to_one();
        let mut body = String::new();
        for (s, t) in &decoded {
            body.push_str(pair.source.entity_key(EntityId(*s)));
            body.push('\t');
            body.push_str(pair.target.entity_key(EntityId(*t)));
            body.push('\n');
        }
        std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {} predicted links → {path}", decoded.len());
    }
    if let Some(path) = flags.get("sim-out") {
        largeea::sim::io::save_sparse_sim(&report.sim, Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote similarity matrix → {path}");
    }
    Ok(write_trace(flags, &rec)?)
}

fn cmd_eval(flags: &Flags) -> Result<(), String> {
    let pair = load_data(flags)?;
    let path = required(flags, "predictions")?;
    let body = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut predicted: HashMap<&str, &str> = HashMap::new();
    for (lineno, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut f = line.split('\t');
        let (Some(a), Some(b), None) = (f.next(), f.next(), f.next()) else {
            return Err(format!(
                "{path}:{}: expected 2 tab-separated fields",
                lineno + 1
            ));
        };
        predicted.insert(a, b);
    }
    let mut correct = 0usize;
    for &(s, t) in &pair.alignment {
        if predicted.get(pair.source.entity_key(s)).copied() == Some(pair.target.entity_key(t)) {
            correct += 1;
        }
    }
    let precision = correct as f64 / predicted.len().max(1) as f64;
    let recall = correct as f64 / pair.alignment.len().max(1) as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    println!(
        "predictions {}  correct {}  precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        predicted.len(),
        correct,
        100.0 * precision,
        100.0 * recall,
        100.0 * f1
    );
    Ok(())
}
