//! The `largeea trace` subcommand family — analysis of `--trace-out` files.
//!
//! Everything here consumes the trace JSON the pipeline writes (schema v2,
//! v1 accepted for old files; DESIGN.md §S0.5, §S0.9) and answers perf
//! questions offline:
//!
//! - `summarize <trace>` — wall-clock tree (total/self, same-name siblings
//!   aggregated), metric tables sorted by name, and derived throughputs;
//! - `diff <a> <b>` — per-stage deltas sorted by regression size, with
//!   optional `--threshold-pct` exit-code gating for CI;
//! - `flame <trace>` — collapsed stacks (`a;b;c <self-µs>`), the folded
//!   format flamegraph tooling eats;
//! - `check <trace> --baseline <file>` — asserts the stage budgets and
//!   exact counters of a `BENCH_*.json` baseline (see `scripts/bench.sh`);
//! - `tail <dir>` — live view of a running `align --live-dir` job: polls
//!   `live.trace.json`, shows the open span path, round/batch progress
//!   with an ETA from `train.epochs_per_sec`, and sparklines over the
//!   sample ring (on a schema-v1 trace with no ring, it degrades to
//!   current gauge values without sparklines);
//! - `expo <trace>` — Prometheus-style text exposition of the metric
//!   tables (`largeea_common::obs::expo`);
//! - `heap <trace>` — the per-span allocation tree from the `alloc.*`
//!   fields heap attribution records (DESIGN.md §S0.10): cumulative/self
//!   bytes, allocation counts and peaks per span, a top-N table by self
//!   bytes, and `--folded` flamegraph stacks weighted by self bytes.

use largeea::bench::Baseline;
use largeea::common::fmt_bytes;
use largeea::common::obs::{expo, Sample, Trace, TraceSpan};
use largeea::core::throughput::derived_throughputs;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const TRACE_USAGE: &str = "largeea trace — analyse --trace-out JSON files

USAGE:
  largeea trace summarize <trace.json>
  largeea trace diff <a.json> <b.json> [--threshold-pct f] [--min-seconds f]
  largeea trace flame <trace.json>
  largeea trace check <trace.json> --baseline <BENCH.json> [--tolerance-pct f]
  largeea trace tail <dir|live.trace.json> [--once] [--interval-ms n]
  largeea trace expo <trace.json>
  largeea trace heap <trace.json> [--top n] [--folded]

`diff` exits non-zero when --threshold-pct is given and any stage in <b>
regressed past it; `check` exits non-zero on any budget or counter
violation. Regenerate baselines with scripts/bench.sh.

`tail` follows the live snapshot a run writes under `--live-dir`
(a directory argument means `<dir>/live.trace.json`). It repolls every
--interval-ms (default 500) until the run's root span closes; --once
prints a single status block and exits (non-zero if the snapshot is
missing or unparseable). `expo` renders the counters/gauges/histograms
of any trace file in Prometheus text exposition format.

`heap` renders the span-attributed allocation profile (alloc.bytes /
alloc.count / alloc.peak fields, written when the run's binary installs
the instrumented allocator): a tree with cumulative and self bytes, a
top-N table (--top, default 10) by self bytes, or --folded flamegraph
stacks weighted by self bytes. Exits non-zero when the trace carries no
allocation data.";

/// Entry point from `main` (args exclude the leading `trace`). Returns the
/// process exit code directly because `diff`/`check` encode their verdict
/// in it.
pub fn cmd_trace(args: &[String]) -> ExitCode {
    match run(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}\n\n{TRACE_USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (positionals, flags) = parse_mixed(args)?;
    let Some(sub) = positionals.first() else {
        return Err("trace needs a subcommand (summarize|diff|flame|check|tail|expo)".into());
    };
    let file = |i: usize| -> Result<Trace, String> {
        let path = positionals
            .get(i)
            .ok_or_else(|| format!("{sub} needs a trace file argument"))?;
        load_trace(path)
    };
    match sub.as_str() {
        "summarize" => {
            summarize(&file(1)?);
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let threshold: Option<f64> = flags
                .get("threshold-pct")
                .map(|v| v.parse().map_err(|_| format!("--threshold-pct got {v:?}")))
                .transpose()?;
            let min_seconds: f64 = match flags.get("min-seconds") {
                Some(v) => v.parse().map_err(|_| format!("--min-seconds got {v:?}"))?,
                None => 0.001,
            };
            Ok(diff(&file(1)?, &file(2)?, threshold, min_seconds))
        }
        "flame" => {
            flame(&file(1)?);
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let baseline_path = flags
                .get("baseline")
                .ok_or("check needs --baseline <BENCH.json>")?;
            let text = std::fs::read_to_string(baseline_path)
                .map_err(|e| format!("reading {baseline_path}: {e}"))?;
            let baseline =
                Baseline::parse(&text).map_err(|e| format!("parsing {baseline_path}: {e}"))?;
            let tolerance: f64 = match flags.get("tolerance-pct") {
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--tolerance-pct got {v:?}"))?,
                None => 50.0,
            };
            Ok(check(&file(1)?, &baseline, tolerance, baseline_path))
        }
        "tail" => {
            let target = positionals
                .get(1)
                .ok_or("tail needs a --live-dir directory (or live.trace.json path)")?;
            let interval_ms: u64 = match flags.get("interval-ms") {
                Some(v) => v.parse().map_err(|_| format!("--interval-ms got {v:?}"))?,
                None => 500,
            };
            tail(Path::new(target), flags.contains_key("once"), interval_ms)
        }
        "expo" => {
            print!("{}", expo::render_text(&file(1)?));
            Ok(ExitCode::SUCCESS)
        }
        "heap" => {
            let top: usize = match flags.get("top") {
                Some(v) => v.parse().map_err(|_| format!("--top got {v:?}"))?,
                None => 10,
            };
            Ok(heap(&file(1)?, top, flags.contains_key("folded")))
        }
        other => Err(format!("unknown trace subcommand {other:?}")),
    }
}

/// Splits `args` into positionals and `--flag value` pairs (the trace
/// subcommands mix both, unlike the flag-only pipeline commands).
/// Boolean flags (`--once`) take no value and are stored as `"true"`.
fn parse_mixed(args: &[String]) -> Result<(Vec<String>, BTreeMap<String, String>), String> {
    const BOOLEAN: &[&str] = &["once", "folded"];
    let mut positionals = Vec::new();
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.strip_prefix("--") {
            None => positionals.push(a.clone()),
            Some(name) if BOOLEAN.contains(&name) => {
                flags.insert(name.to_owned(), "true".to_owned());
            }
            Some(name) => {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_owned(), value.clone());
            }
        }
    }
    Ok((positionals, flags))
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Trace::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

// --- summarize -----------------------------------------------------------

/// Same-name siblings folded into one row (50 `epoch` spans are one line).
struct Rollup<'a> {
    name: &'a str,
    total: f64,
    self_secs: f64,
    count: usize,
    children: Vec<&'a TraceSpan>,
}

fn rollup<'a>(spans: &[&'a TraceSpan]) -> Vec<Rollup<'a>> {
    let mut rows: Vec<Rollup> = Vec::new();
    for s in spans {
        match rows.iter_mut().find(|r| r.name == s.name) {
            Some(r) => {
                r.total += s.seconds;
                r.self_secs += s.self_seconds();
                r.count += 1;
                r.children.extend(s.children.iter());
            }
            None => rows.push(Rollup {
                name: &s.name,
                total: s.seconds,
                self_secs: s.self_seconds(),
                count: 1,
                children: s.children.iter().collect(),
            }),
        }
    }
    rows
}

fn print_rollup(spans: &[&TraceSpan], depth: usize, root_total: f64) {
    for r in rollup(spans) {
        let label = if r.count > 1 {
            format!("{}{} ×{}", "  ".repeat(depth), r.name, r.count)
        } else {
            format!("{}{}", "  ".repeat(depth), r.name)
        };
        println!(
            "  {label:<38} {:>9.3}s {:>9.3}s {:>5.1}%",
            r.total,
            r.self_secs,
            if root_total > 0.0 {
                100.0 * r.total / root_total
            } else {
                0.0
            }
        );
        print_rollup(&r.children, depth + 1, root_total);
    }
}

fn summarize(trace: &Trace) {
    let roots: Vec<&TraceSpan> = trace.spans.iter().collect();
    let root_total: f64 = trace.spans.iter().map(|s| s.seconds).sum();
    println!(
        "  {:<38} {:>10} {:>10} {:>6}",
        "span", "total", "self", "share"
    );
    print_rollup(&roots, 0, root_total);

    // The emitter writes these tables sorted, but parsed files preserve
    // their on-disk order — sort defensively so the report is
    // deterministic for any input (and golden-testable).
    if !trace.counters.is_empty() {
        println!("\ncounters:");
        let mut counters = trace.counters.clone();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, v) in &counters {
            println!("  {name:<38} {v:>12}");
        }
    }
    if !trace.gauges.is_empty() {
        println!("\ngauges:");
        let mut gauges = trace.gauges.clone();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, v) in &gauges {
            println!("  {name:<38} {v:>12.3}");
        }
    }
    if !trace.histograms.is_empty() {
        println!("\nhistograms:");
        let mut histograms = trace.histograms.clone();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, h) in &histograms {
            println!(
                "  {name:<38} count {} sum {:.4} min {:.4} p50 {:.4} p95 {:.4} max {:.4}",
                h.count, h.sum, h.min, h.p50, h.p95, h.max
            );
        }
    }
    if !trace.samples.is_empty() {
        println!(
            "\nlive samples: {} (last tick {})",
            trace.samples.len(),
            trace.samples.last().map_or(0, |s| s.tick)
        );
    }
    let rates = derived_throughputs(trace);
    if !rates.is_empty() {
        println!("\nderived throughputs:");
        for t in rates {
            println!(
                "  {:<38} {:>12.1} {}/s  ({} {} over {:.3}s)",
                t.name, t.per_sec, t.unit, t.count, t.unit, t.seconds
            );
        }
    }
}

// --- diff ----------------------------------------------------------------

/// Per-name totals over the whole tree: `name → (seconds, span count)`.
fn aggregate(trace: &Trace) -> BTreeMap<String, (f64, usize)> {
    fn walk(spans: &[TraceSpan], into: &mut BTreeMap<String, (f64, usize)>) {
        for s in spans {
            let e = into.entry(s.name.clone()).or_insert((0.0, 0));
            e.0 += s.seconds;
            e.1 += 1;
            walk(&s.children, into);
        }
    }
    let mut m = BTreeMap::new();
    walk(&trace.spans, &mut m);
    m
}

fn diff(a: &Trace, b: &Trace, threshold_pct: Option<f64>, min_seconds: f64) -> ExitCode {
    let (agg_a, agg_b) = (aggregate(a), aggregate(b));
    let names: Vec<&String> = {
        let mut n: Vec<&String> = agg_a.keys().chain(agg_b.keys()).collect();
        n.sort();
        n.dedup();
        n
    };
    struct Row<'a> {
        name: &'a str,
        a: f64,
        b: f64,
        delta: f64,
    }
    let mut rows: Vec<Row> = names
        .into_iter()
        .map(|name| {
            let sa = agg_a.get(name).map_or(0.0, |v| v.0);
            let sb = agg_b.get(name).map_or(0.0, |v| v.0);
            Row {
                name,
                a: sa,
                b: sb,
                delta: sb - sa,
            }
        })
        .collect();
    rows.sort_by(|x, y| y.delta.abs().total_cmp(&x.delta.abs()));

    println!(
        "  {:<28} {:>10} {:>10} {:>10} {:>8}",
        "span", "a", "b", "delta", "pct"
    );
    for r in &rows {
        let pct = if r.a > 0.0 {
            format!("{:>+7.1}%", 100.0 * r.delta / r.a)
        } else {
            "     new".to_owned()
        };
        println!(
            "  {:<28} {:>9.3}s {:>9.3}s {:>+9.3}s {pct}",
            r.name, r.a, r.b, r.delta
        );
    }

    let mut counter_drift = false;
    for (name, vb) in &b.counters {
        let va = a.counter(name);
        if va != *vb {
            counter_drift = true;
            println!(
                "  counter {name}: {va} → {vb} ({:+})",
                *vb as i128 - va as i128
            );
        }
    }
    for (name, va) in &a.counters {
        if !b.counters.iter().any(|(n, _)| n == name) {
            counter_drift = true;
            println!("  counter {name}: {va} → absent");
        }
    }
    if counter_drift {
        println!("  (counter drift means the computation changed, not just the clock)");
    }

    let Some(pct) = threshold_pct else {
        return ExitCode::SUCCESS;
    };
    let regressions: Vec<&Row> = rows
        .iter()
        .filter(|r| r.delta > min_seconds && (r.a == 0.0 || r.delta > r.a * pct / 100.0))
        .collect();
    if regressions.is_empty() {
        println!("\nOK: no span regressed more than {pct}% (noise floor {min_seconds}s)");
        ExitCode::SUCCESS
    } else {
        println!(
            "\nREGRESSION: {} span(s) past the {pct}% threshold:",
            regressions.len()
        );
        for r in &regressions {
            println!("  {}: {:.3}s → {:.3}s ({:+.3}s)", r.name, r.a, r.b, r.delta);
        }
        ExitCode::FAILURE
    }
}

// --- flame ---------------------------------------------------------------

fn flame(trace: &Trace) {
    fn walk(spans: &[TraceSpan], prefix: &str, into: &mut BTreeMap<String, u64>) {
        for s in spans {
            let stack = if prefix.is_empty() {
                s.name.clone()
            } else {
                format!("{prefix};{}", s.name)
            };
            let micros = (s.self_seconds() * 1e6).round() as u64;
            *into.entry(stack.clone()).or_insert(0) += micros;
            walk(&s.children, &stack, into);
        }
    }
    let mut folded = BTreeMap::new();
    walk(&trace.spans, "", &mut folded);
    for (stack, micros) in folded {
        println!("{stack} {micros}");
    }
}

// --- check ---------------------------------------------------------------

fn check(trace: &Trace, baseline: &Baseline, tolerance_pct: f64, baseline_path: &str) -> ExitCode {
    let violations = baseline.check(trace, tolerance_pct);
    if violations.is_empty() {
        println!(
            "OK: within {baseline_path} budgets ({} stages at +{tolerance_pct}%, {} counters exact)",
            baseline.stages.len(),
            baseline.counters.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL: {} violation(s) against {baseline_path}:",
            violations.len()
        );
        for v in &violations {
            println!("  {v}");
        }
        ExitCode::FAILURE
    }
}

// --- heap ----------------------------------------------------------------

/// Cumulative allocated bytes a span's attribution recorded (0 when the
/// run's binary had no instrumented allocator, so the field is absent).
fn span_alloc_bytes(s: &TraceSpan) -> u64 {
    s.field_u64("alloc.bytes").unwrap_or(0)
}

/// Bytes attributed to the span itself: cumulative minus what its direct
/// children account for, clamped at zero (a child window can outlive its
/// parent's arithmetic only through clock-free counting races we clamp
/// away rather than print as negative).
fn span_self_bytes(s: &TraceSpan) -> u64 {
    let children: u64 = s.children.iter().map(span_alloc_bytes).sum();
    span_alloc_bytes(s).saturating_sub(children)
}

/// Same-name siblings folded into one allocation row (mirrors [`Rollup`]
/// for wall clock): 50 `epoch` spans are one line with summed bytes and
/// the maximum peak.
struct HeapRow<'a> {
    name: &'a str,
    bytes: u64,
    self_bytes: u64,
    count: u64,
    peak: u64,
    spans: usize,
    children: Vec<&'a TraceSpan>,
}

fn heap_rollup<'a>(spans: &[&'a TraceSpan]) -> Vec<HeapRow<'a>> {
    let mut rows: Vec<HeapRow> = Vec::new();
    for s in spans {
        let bytes = span_alloc_bytes(s);
        let count = s.field_u64("alloc.count").unwrap_or(0);
        let peak = s.field_u64("alloc.peak").unwrap_or(0);
        match rows.iter_mut().find(|r| r.name == s.name) {
            Some(r) => {
                r.bytes += bytes;
                r.self_bytes += span_self_bytes(s);
                r.count += count;
                r.peak = r.peak.max(peak);
                r.spans += 1;
                r.children.extend(s.children.iter());
            }
            None => rows.push(HeapRow {
                name: &s.name,
                bytes,
                self_bytes: span_self_bytes(s),
                count,
                peak,
                spans: 1,
                children: s.children.iter().collect(),
            }),
        }
    }
    rows
}

fn print_heap_rollup(spans: &[&TraceSpan], depth: usize, root_total: u64) {
    for r in heap_rollup(spans) {
        let label = if r.spans > 1 {
            format!("{}{} ×{}", "  ".repeat(depth), r.name, r.spans)
        } else {
            format!("{}{}", "  ".repeat(depth), r.name)
        };
        println!(
            "  {label:<38} {:>8} {:>8} {:>10} {:>8} {:>5.1}%",
            fmt_bytes(r.bytes as usize),
            fmt_bytes(r.self_bytes as usize),
            r.count,
            fmt_bytes(r.peak as usize),
            if root_total > 0 {
                100.0 * r.bytes as f64 / root_total as f64
            } else {
                0.0
            }
        );
        print_heap_rollup(&r.children, depth + 1, root_total);
    }
}

/// Per-name totals over the whole tree: `name → (self, cum, allocs, peak)`.
fn aggregate_heap(trace: &Trace) -> BTreeMap<String, (u64, u64, u64, u64)> {
    fn walk(spans: &[TraceSpan], into: &mut BTreeMap<String, (u64, u64, u64, u64)>) {
        for s in spans {
            let e = into.entry(s.name.clone()).or_insert((0, 0, 0, 0));
            e.0 += span_self_bytes(s);
            e.1 += span_alloc_bytes(s);
            e.2 += s.field_u64("alloc.count").unwrap_or(0);
            e.3 = e.3.max(s.field_u64("alloc.peak").unwrap_or(0));
            walk(&s.children, into);
        }
    }
    let mut m = BTreeMap::new();
    walk(&trace.spans, &mut m);
    m
}

fn heap(trace: &Trace, top: usize, folded: bool) -> ExitCode {
    fn has_alloc(spans: &[TraceSpan]) -> bool {
        spans
            .iter()
            .any(|s| s.field_u64("alloc.bytes").is_some() || has_alloc(&s.children))
    }
    if !has_alloc(&trace.spans) {
        eprintln!(
            "no allocation data: the trace carries no alloc.* span fields \
             (the run's binary did not install the instrumented allocator, \
             or heap attribution was disabled)"
        );
        return ExitCode::FAILURE;
    }

    if folded {
        // Collapsed stacks weighted by self bytes — same format `flame`
        // emits for wall clock, so the same flamegraph tooling applies.
        fn walk(spans: &[TraceSpan], prefix: &str, into: &mut BTreeMap<String, u64>) {
            for s in spans {
                let stack = if prefix.is_empty() {
                    s.name.clone()
                } else {
                    format!("{prefix};{}", s.name)
                };
                let bytes = span_self_bytes(s);
                if bytes > 0 {
                    *into.entry(stack.clone()).or_insert(0) += bytes;
                }
                walk(&s.children, &stack, into);
            }
        }
        let mut stacks = BTreeMap::new();
        walk(&trace.spans, "", &mut stacks);
        for (stack, bytes) in stacks {
            println!("{stack} {bytes}");
        }
        return ExitCode::SUCCESS;
    }

    let roots: Vec<&TraceSpan> = trace.spans.iter().collect();
    let root_total: u64 = trace.spans.iter().map(span_alloc_bytes).sum();
    println!(
        "  {:<38} {:>9} {:>9} {:>10} {:>8} {:>6}",
        "span", "cum", "self", "allocs", "peak", "share"
    );
    print_heap_rollup(&roots, 0, root_total);

    let mut rows: Vec<(String, (u64, u64, u64, u64))> = aggregate_heap(trace)
        .into_iter()
        .filter(|(_, v)| v.0 > 0)
        .collect();
    // Self bytes descending; name breaks ties so the table is
    // deterministic (and golden-testable) for any input.
    rows.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(&b.0)));
    rows.truncate(top);
    if !rows.is_empty() {
        println!("\ntop {} span(s) by self bytes:", rows.len());
        println!(
            "  {:<38} {:>9} {:>9} {:>10} {:>8}",
            "span", "self", "cum", "allocs", "peak"
        );
        for (name, (self_b, cum, count, peak)) in &rows {
            println!(
                "  {name:<38} {:>9} {:>9} {count:>10} {:>8}",
                fmt_bytes(*self_b as usize),
                fmt_bytes(*cum as usize),
                fmt_bytes(*peak as usize)
            );
        }
    }
    ExitCode::SUCCESS
}

// --- tail ----------------------------------------------------------------

/// Counter series shown as per-snapshot deltas in the tail view.
const TAIL_COUNTER_SERIES: &[&str] = &[
    "mem.spill.write_bytes",
    "mem.spill.read_bytes",
    "ckpt.write_bytes",
];
/// Memory gauges shown as sparklines: tracked bytes (MemTracker's books),
/// measured live heap (instrumented allocator), and OS RSS (linux only —
/// absent elsewhere). Tracked vs heap.live vs mem.rss side by side is the
/// quick visual drift check `--mem-audit` formalises.
const TAIL_GAUGE_SERIES: &[&str] = &["mem.tracked.bytes", "heap.live", "mem.rss"];
/// How many trailing samples a sparkline covers.
const TAIL_WINDOW: usize = 32;

fn tail(target: &Path, once: bool, interval_ms: u64) -> Result<ExitCode, String> {
    let path: PathBuf = if target.is_dir() {
        target.join("live.trace.json")
    } else {
        target.to_path_buf()
    };
    if once {
        let trace = load_trace(&path.to_string_lossy())?;
        print!("{}", render_tail(&trace, &path));
        return Ok(ExitCode::SUCCESS);
    }
    // Follow mode: snapshots are replaced atomically (temp → rename), so a
    // read either sees a complete document or the file missing for an
    // instant — both are retried, not fatal.
    let mut waiting_reported = false;
    loop {
        match load_trace(&path.to_string_lossy()) {
            Ok(trace) => {
                waiting_reported = false;
                print!("{}", render_tail(&trace, &path));
                if open_span_path(&trace).is_none() {
                    return Ok(ExitCode::SUCCESS);
                }
            }
            Err(e) => {
                if !waiting_reported {
                    eprintln!("waiting: {e}");
                    waiting_reported = true;
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(1)));
    }
}

/// The chain of still-open spans (recorded with `seconds == 0.0` in a live
/// snapshot), deepest last: `pipeline > round > train`. `None` once every
/// span has closed — the run is over.
fn open_span_path(trace: &Trace) -> Option<Vec<&str>> {
    let mut path = Vec::new();
    let mut spans: &[TraceSpan] = &trace.spans;
    while let Some(open) = spans.iter().rev().find(|s| s.seconds == 0.0) {
        path.push(open.name.as_str());
        spans = &open.children;
    }
    if path.is_empty() {
        None
    } else {
        Some(path)
    }
}

/// One status block: header, open-span path, progress/ETA, sparklines.
fn render_tail(trace: &Trace, path: &Path) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let (tick, secs) = trace
        .samples
        .last()
        .map_or((0, 0.0), |s| (s.tick, s.seconds));
    let _ = writeln!(
        out,
        "{} — tick {tick}, {secs:.1}s, {} sample(s)",
        path.display(),
        trace.samples.len()
    );
    match open_span_path(trace) {
        Some(p) => {
            let _ = writeln!(out, "  open: {}", p.join(" > "));
        }
        None => {
            let _ = writeln!(out, "  run complete");
        }
    }
    let progress = progress_line(trace);
    if !progress.is_empty() {
        let _ = writeln!(out, "  {progress}");
    }
    if trace.samples.is_empty() {
        // Schema-v1 snapshot (or sampling disabled): no ring to draw
        // sparklines from — degrade to the current gauge values so old
        // traces still tail usefully.
        for name in TAIL_GAUGE_SERIES {
            if let Some(v) = trace.gauge(name).filter(|&v| v > 0.0) {
                let _ = writeln!(out, "  {name:<26} {}", fmt_bytes(v as usize));
            }
        }
        return out;
    }
    for name in TAIL_COUNTER_SERIES {
        let deltas = counter_deltas(&trace.samples, name);
        let total = trace.counter(name);
        if total > 0 && !deltas.is_empty() {
            let _ = writeln!(out, "  Δ {name:<24} {} (total {total})", sparkline(&deltas));
        }
    }
    for name in TAIL_GAUGE_SERIES {
        let series = gauge_series(&trace.samples, name);
        if series.iter().any(|&v| v > 0.0) {
            let _ = writeln!(
                out,
                "  {name:<26} {} (last {})",
                sparkline(&series),
                fmt_bytes(series.last().copied().unwrap_or(0.0) as usize)
            );
        }
    }
    out
}

/// Round/batch/epoch progress from the `progress.*` gauges, with an ETA
/// from `train.epochs_per_sec` when the throughput is derivable (it is not
/// during the first round — the open `train` span has no duration yet, so
/// the wall clock of the latest sample stands in).
fn progress_line(trace: &Trace) -> String {
    let g = |n: &str| trace.gauge(n).unwrap_or(0.0);
    let mut parts = Vec::new();
    if g("progress.rounds_total") > 0.0 {
        parts.push(format!(
            "round {:.0}/{:.0}",
            g("progress.round"),
            g("progress.rounds_total")
        ));
    }
    if g("progress.batches_total") > 0.0 {
        parts.push(format!(
            "batch {:.0}/{:.0}",
            g("progress.batch"),
            g("progress.batches_total")
        ));
    }
    let expected =
        g("progress.rounds_total") * g("progress.batches_total") * g("progress.epochs_total");
    if expected > 0.0 {
        let done = trace.span_count("epoch") as f64;
        parts.push(format!(
            "epochs {done:.0}/{expected:.0} ({:.1}%)",
            100.0 * done / expected
        ));
        let rate = derived_throughputs(trace)
            .iter()
            .find(|t| t.name == "train.epochs_per_sec")
            .map(|t| t.per_sec)
            .or_else(|| {
                trace
                    .samples
                    .last()
                    .filter(|s| s.seconds > 0.0)
                    .map(|s| done / s.seconds)
            })
            .filter(|r| r.is_finite() && *r > 0.0);
        if let Some(rate) = rate {
            if done < expected {
                parts.push(format!("ETA {:.1}s", (expected - done) / rate));
            }
        }
    }
    parts.join("  ")
}

/// Per-snapshot increments of a counter over the trailing window
/// (counters are monotone, so consecutive differences are the activity
/// between snapshots). Needs at least two samples.
fn counter_deltas(samples: &[Sample], name: &str) -> Vec<f64> {
    let tail = &samples[samples.len().saturating_sub(TAIL_WINDOW + 1)..];
    tail.windows(2)
        .map(|w| w[1].counter(name).saturating_sub(w[0].counter(name)) as f64)
        .collect()
}

/// A gauge's raw values over the trailing window (absent → 0.0 so the
/// series keeps one slot per sample).
fn gauge_series(samples: &[Sample], name: &str) -> Vec<f64> {
    let tail = &samples[samples.len().saturating_sub(TAIL_WINDOW)..];
    tail.iter().map(|s| s.gauge(name).unwrap_or(0.0)).collect()
}

/// One block character per value, scaled to the window maximum; an
/// all-zero (or empty) window renders as a flat baseline.
fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().fold(0.0f64, |m, &v| m.max(v));
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                BLOCKS[0]
            } else {
                let idx = ((v / max) * 7.0).round() as usize;
                BLOCKS[idx.clamp(1, 7)]
            }
        })
        .collect()
}
