//! The `largeea trace` subcommand family — analysis of `--trace-out` files.
//!
//! Everything here consumes the schema-v1 trace JSON the pipeline writes
//! (DESIGN.md §S0.5) and answers perf questions offline:
//!
//! - `summarize <trace>` — wall-clock tree (total/self, same-name siblings
//!   aggregated), metric tables, and derived throughputs;
//! - `diff <a> <b>` — per-stage deltas sorted by regression size, with
//!   optional `--threshold-pct` exit-code gating for CI;
//! - `flame <trace>` — collapsed stacks (`a;b;c <self-µs>`), the folded
//!   format flamegraph tooling eats;
//! - `check <trace> --baseline <file>` — asserts the stage budgets and
//!   exact counters of a `BENCH_*.json` baseline (see `scripts/bench.sh`).

use largeea::bench::Baseline;
use largeea::common::obs::{Trace, TraceSpan};
use largeea::core::throughput::derived_throughputs;
use std::collections::BTreeMap;
use std::process::ExitCode;

const TRACE_USAGE: &str = "largeea trace — analyse --trace-out JSON files

USAGE:
  largeea trace summarize <trace.json>
  largeea trace diff <a.json> <b.json> [--threshold-pct f] [--min-seconds f]
  largeea trace flame <trace.json>
  largeea trace check <trace.json> --baseline <BENCH.json> [--tolerance-pct f]

`diff` exits non-zero when --threshold-pct is given and any stage in <b>
regressed past it; `check` exits non-zero on any budget or counter
violation. Regenerate baselines with scripts/bench.sh.";

/// Entry point from `main` (args exclude the leading `trace`). Returns the
/// process exit code directly because `diff`/`check` encode their verdict
/// in it.
pub fn cmd_trace(args: &[String]) -> ExitCode {
    match run(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}\n\n{TRACE_USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (positionals, flags) = parse_mixed(args)?;
    let Some(sub) = positionals.first() else {
        return Err("trace needs a subcommand (summarize|diff|flame|check)".into());
    };
    let file = |i: usize| -> Result<Trace, String> {
        let path = positionals
            .get(i)
            .ok_or_else(|| format!("{sub} needs a trace file argument"))?;
        load_trace(path)
    };
    match sub.as_str() {
        "summarize" => {
            summarize(&file(1)?);
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let threshold: Option<f64> = flags
                .get("threshold-pct")
                .map(|v| v.parse().map_err(|_| format!("--threshold-pct got {v:?}")))
                .transpose()?;
            let min_seconds: f64 = match flags.get("min-seconds") {
                Some(v) => v.parse().map_err(|_| format!("--min-seconds got {v:?}"))?,
                None => 0.001,
            };
            Ok(diff(&file(1)?, &file(2)?, threshold, min_seconds))
        }
        "flame" => {
            flame(&file(1)?);
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let baseline_path = flags
                .get("baseline")
                .ok_or("check needs --baseline <BENCH.json>")?;
            let text = std::fs::read_to_string(baseline_path)
                .map_err(|e| format!("reading {baseline_path}: {e}"))?;
            let baseline =
                Baseline::parse(&text).map_err(|e| format!("parsing {baseline_path}: {e}"))?;
            let tolerance: f64 = match flags.get("tolerance-pct") {
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--tolerance-pct got {v:?}"))?,
                None => 50.0,
            };
            Ok(check(&file(1)?, &baseline, tolerance, baseline_path))
        }
        other => Err(format!("unknown trace subcommand {other:?}")),
    }
}

/// Splits `args` into positionals and `--flag value` pairs (the trace
/// subcommands mix both, unlike the flag-only pipeline commands).
fn parse_mixed(args: &[String]) -> Result<(Vec<String>, BTreeMap<String, String>), String> {
    let mut positionals = Vec::new();
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.strip_prefix("--") {
            None => positionals.push(a.clone()),
            Some(name) => {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_owned(), value.clone());
            }
        }
    }
    Ok((positionals, flags))
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Trace::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

// --- summarize -----------------------------------------------------------

/// Same-name siblings folded into one row (50 `epoch` spans are one line).
struct Rollup<'a> {
    name: &'a str,
    total: f64,
    self_secs: f64,
    count: usize,
    children: Vec<&'a TraceSpan>,
}

fn rollup<'a>(spans: &[&'a TraceSpan]) -> Vec<Rollup<'a>> {
    let mut rows: Vec<Rollup> = Vec::new();
    for s in spans {
        match rows.iter_mut().find(|r| r.name == s.name) {
            Some(r) => {
                r.total += s.seconds;
                r.self_secs += s.self_seconds();
                r.count += 1;
                r.children.extend(s.children.iter());
            }
            None => rows.push(Rollup {
                name: &s.name,
                total: s.seconds,
                self_secs: s.self_seconds(),
                count: 1,
                children: s.children.iter().collect(),
            }),
        }
    }
    rows
}

fn print_rollup(spans: &[&TraceSpan], depth: usize, root_total: f64) {
    for r in rollup(spans) {
        let label = if r.count > 1 {
            format!("{}{} ×{}", "  ".repeat(depth), r.name, r.count)
        } else {
            format!("{}{}", "  ".repeat(depth), r.name)
        };
        println!(
            "  {label:<38} {:>9.3}s {:>9.3}s {:>5.1}%",
            r.total,
            r.self_secs,
            if root_total > 0.0 {
                100.0 * r.total / root_total
            } else {
                0.0
            }
        );
        print_rollup(&r.children, depth + 1, root_total);
    }
}

fn summarize(trace: &Trace) {
    let roots: Vec<&TraceSpan> = trace.spans.iter().collect();
    let root_total: f64 = trace.spans.iter().map(|s| s.seconds).sum();
    println!(
        "  {:<38} {:>10} {:>10} {:>6}",
        "span", "total", "self", "share"
    );
    print_rollup(&roots, 0, root_total);

    if !trace.counters.is_empty() {
        println!("\ncounters:");
        for (name, v) in &trace.counters {
            println!("  {name:<38} {v:>12}");
        }
    }
    if !trace.gauges.is_empty() {
        println!("\ngauges:");
        for (name, v) in &trace.gauges {
            println!("  {name:<38} {v:>12.3}");
        }
    }
    if !trace.histograms.is_empty() {
        println!("\nhistograms:");
        for (name, h) in &trace.histograms {
            println!(
                "  {name:<38} count {} sum {:.4} min {:.4} p50 {:.4} p95 {:.4} max {:.4}",
                h.count, h.sum, h.min, h.p50, h.p95, h.max
            );
        }
    }
    let rates = derived_throughputs(trace);
    if !rates.is_empty() {
        println!("\nderived throughputs:");
        for t in rates {
            println!(
                "  {:<38} {:>12.1} {}/s  ({} {} over {:.3}s)",
                t.name, t.per_sec, t.unit, t.count, t.unit, t.seconds
            );
        }
    }
}

// --- diff ----------------------------------------------------------------

/// Per-name totals over the whole tree: `name → (seconds, span count)`.
fn aggregate(trace: &Trace) -> BTreeMap<String, (f64, usize)> {
    fn walk(spans: &[TraceSpan], into: &mut BTreeMap<String, (f64, usize)>) {
        for s in spans {
            let e = into.entry(s.name.clone()).or_insert((0.0, 0));
            e.0 += s.seconds;
            e.1 += 1;
            walk(&s.children, into);
        }
    }
    let mut m = BTreeMap::new();
    walk(&trace.spans, &mut m);
    m
}

fn diff(a: &Trace, b: &Trace, threshold_pct: Option<f64>, min_seconds: f64) -> ExitCode {
    let (agg_a, agg_b) = (aggregate(a), aggregate(b));
    let names: Vec<&String> = {
        let mut n: Vec<&String> = agg_a.keys().chain(agg_b.keys()).collect();
        n.sort();
        n.dedup();
        n
    };
    struct Row<'a> {
        name: &'a str,
        a: f64,
        b: f64,
        delta: f64,
    }
    let mut rows: Vec<Row> = names
        .into_iter()
        .map(|name| {
            let sa = agg_a.get(name).map_or(0.0, |v| v.0);
            let sb = agg_b.get(name).map_or(0.0, |v| v.0);
            Row {
                name,
                a: sa,
                b: sb,
                delta: sb - sa,
            }
        })
        .collect();
    rows.sort_by(|x, y| y.delta.abs().total_cmp(&x.delta.abs()));

    println!(
        "  {:<28} {:>10} {:>10} {:>10} {:>8}",
        "span", "a", "b", "delta", "pct"
    );
    for r in &rows {
        let pct = if r.a > 0.0 {
            format!("{:>+7.1}%", 100.0 * r.delta / r.a)
        } else {
            "     new".to_owned()
        };
        println!(
            "  {:<28} {:>9.3}s {:>9.3}s {:>+9.3}s {pct}",
            r.name, r.a, r.b, r.delta
        );
    }

    let mut counter_drift = false;
    for (name, vb) in &b.counters {
        let va = a.counter(name);
        if va != *vb {
            counter_drift = true;
            println!(
                "  counter {name}: {va} → {vb} ({:+})",
                *vb as i128 - va as i128
            );
        }
    }
    for (name, va) in &a.counters {
        if !b.counters.iter().any(|(n, _)| n == name) {
            counter_drift = true;
            println!("  counter {name}: {va} → absent");
        }
    }
    if counter_drift {
        println!("  (counter drift means the computation changed, not just the clock)");
    }

    let Some(pct) = threshold_pct else {
        return ExitCode::SUCCESS;
    };
    let regressions: Vec<&Row> = rows
        .iter()
        .filter(|r| r.delta > min_seconds && (r.a == 0.0 || r.delta > r.a * pct / 100.0))
        .collect();
    if regressions.is_empty() {
        println!("\nOK: no span regressed more than {pct}% (noise floor {min_seconds}s)");
        ExitCode::SUCCESS
    } else {
        println!(
            "\nREGRESSION: {} span(s) past the {pct}% threshold:",
            regressions.len()
        );
        for r in &regressions {
            println!("  {}: {:.3}s → {:.3}s ({:+.3}s)", r.name, r.a, r.b, r.delta);
        }
        ExitCode::FAILURE
    }
}

// --- flame ---------------------------------------------------------------

fn flame(trace: &Trace) {
    fn walk(spans: &[TraceSpan], prefix: &str, into: &mut BTreeMap<String, u64>) {
        for s in spans {
            let stack = if prefix.is_empty() {
                s.name.clone()
            } else {
                format!("{prefix};{}", s.name)
            };
            let micros = (s.self_seconds() * 1e6).round() as u64;
            *into.entry(stack.clone()).or_insert(0) += micros;
            walk(&s.children, &stack, into);
        }
    }
    let mut folded = BTreeMap::new();
    walk(&trace.spans, "", &mut folded);
    for (stack, micros) in folded {
        println!("{stack} {micros}");
    }
}

// --- check ---------------------------------------------------------------

fn check(trace: &Trace, baseline: &Baseline, tolerance_pct: f64, baseline_path: &str) -> ExitCode {
    let violations = baseline.check(trace, tolerance_pct);
    if violations.is_empty() {
        println!(
            "OK: within {baseline_path} budgets ({} stages at +{tolerance_pct}%, {} counters exact)",
            baseline.stages.len(),
            baseline.counters.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL: {} violation(s) against {baseline_path}:",
            violations.len()
        );
        for v in &violations {
            println!("  {v}");
        }
        ExitCode::FAILURE
    }
}
