//! Property-based gradient checks: the tape's analytic gradients must match
//! central finite differences for randomly composed expressions.

use largeea::common::check::for_each_case;
use largeea::common::rng::Rng;
use largeea::tensor::{Matrix, Tape};
use std::rc::Rc;

fn random_param(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-2.0f32..2.0))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Picks one of several expression builders over a 3×3 parameter.
#[derive(Debug, Clone, Copy)]
enum Expr {
    MatmulRelu,
    GatherL1,
    NormalizeDot,
    TanhScale,
    HStackMul,
}

const EXPRS: [Expr; 5] = [
    Expr::MatmulRelu,
    Expr::GatherL1,
    Expr::NormalizeDot,
    Expr::TanhScale,
    Expr::HStackMul,
];

fn build(expr: Expr, tape: &mut Tape, p: largeea::tensor::Var) -> largeea::tensor::Var {
    match expr {
        Expr::MatmulRelu => {
            let c = tape.constant(Matrix::from_fn(3, 3, |r, c| ((r + 2 * c) % 3) as f32 - 1.0));
            let h = tape.matmul(p, c);
            let h = tape.relu(h);
            tape.sum_all(h)
        }
        Expr::GatherL1 => {
            let a = tape.gather_rows(p, Rc::new(vec![0, 2]));
            let b = tape.gather_rows(p, Rc::new(vec![1, 1]));
            let d = tape.row_l1(a, b);
            let d = tape.add_scalar(d, 0.5);
            let d = tape.relu(d);
            tape.sum_all(d)
        }
        Expr::NormalizeDot => {
            let n = tape.l2_normalize_rows(p, 1e-6);
            let c = tape.constant(Matrix::from_fn(3, 3, |r, c| (r * c) as f32 * 0.1 + 0.2));
            let d = tape.row_dot(n, c);
            tape.sum_all(d)
        }
        Expr::TanhScale => {
            let t = tape.tanh(p);
            let s = tape.scale(t, 1.5);
            tape.mean_all(s)
        }
        Expr::HStackMul => {
            let c = tape.constant(Matrix::from_fn(3, 3, |r, c| ((r + c) % 2) as f32 - 0.5));
            let h = tape.hstack(p, c);
            let hh = tape.mul_elem(h, h);
            tape.sum_all(hh)
        }
    }
}

#[test]
fn gradients_match_finite_differences() {
    for_each_case(0xAD01, 48, |rng| {
        let p0 = random_param(rng, 3, 3);
        let expr = EXPRS[rng.gen_range(0..EXPRS.len())];
        let mut tape = Tape::new();
        let p = tape.param(p0.clone());
        let loss = build(expr, &mut tape, p);
        tape.backward(loss);
        let analytic = tape.grad(p).expect("param requires grad").clone();

        let eps = 1e-2f32;
        for idx in 0..9 {
            // skip points near ReLU/L1 kinks where the derivative jumps
            let g = analytic.as_slice()[idx];
            let f = |delta: f32| {
                let mut m = p0.clone();
                m.as_mut_slice()[idx] += delta;
                let mut t = Tape::new();
                let v = t.param(m);
                let l = build(expr, &mut t, v);
                t.scalar(l)
            };
            let numeric = (f(eps) - f(-eps)) / (2.0 * eps);
            // kink detection: at a ReLU/L1 kink the second difference is
            // O(eps · slope-jump); in smooth regions it is O(eps²·f″).
            let curvature = (f(eps) + f(-eps) - 2.0 * f(0.0)).abs();
            if curvature > 0.05 * eps {
                continue;
            }
            assert!(
                (numeric - g).abs() < 5e-2 * (1.0 + numeric.abs().max(g.abs())),
                "{expr:?} idx {idx}: numeric {numeric} analytic {g}"
            );
        }
    });
}
