//! Seeded chaos sweep (DESIGN.md §S0.12): every registered failpoint ×
//! every injection mode, driven against the DBP1M-CI preset, asserting the
//! **crash-only invariant** — each faulted run must land in exactly one of
//! three honest outcomes:
//!
//! 1. **absorbed** — the run completes with results bit-identical to the
//!    fault-free oracle (transient faults under retry, best-effort sites
//!    that swallow their own errors);
//! 2. **honestly degraded** — with `--degraded-ok`, the run completes on
//!    partial results and says so (`degraded.*` trace markers, quarantine
//!    records in the manifest, `LargeEaReport::degraded`);
//! 3. **typed death** — the run fails with a typed [`RunError`] (or an
//!    injected panic), and nothing half-written is ever marked durable: a
//!    resume from the same checkpoint directory reproduces the oracle
//!    bit-identically.
//!
//! Silent wrong answers are the one outcome the sweep exists to rule out.
//! Failpoint state is process-global, so the whole sweep runs inside one
//! `#[test]` (same discipline as `tests/crash_recovery.rs`).

use largeea_common::failpoint;
use largeea_common::obs::{LiveConfig, ObsConfig, Recorder};
use largeea_core::checkpoint::Checkpoint;
use largeea_core::pipeline::{ExecOptions, LargeEa, LargeEaConfig, RunError};
use largeea_core::structure_channel::StructureChannelConfig;
use largeea_core::{checkpoint, registered_failpoints, spill};
use largeea_data::Preset;
use largeea_kg::{AlignmentSeeds, KgPair};
use largeea_models::{ModelKind, TrainConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

const ROUNDS: usize = 1;

fn cfg() -> LargeEaConfig {
    LargeEaConfig {
        structure: StructureChannelConfig {
            k: 2,
            model: ModelKind::GcnAlign,
            train: TrainConfig {
                epochs: 4,
                dim: 16,
                ..Default::default()
            },
            top_k: 5,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn fixture() -> (KgPair, AlignmentSeeds) {
    let pair = Preset::Dbp1mCi.spec(0.05).generate();
    let seeds = pair.split_seeds(0.2, 7);
    (pair, seeds)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("largeea_chaos_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A recorder with live telemetry on (so the `live.write` failpoint has a
/// site to fire at). `every: 4` keeps snapshot writes frequent at this
/// scale.
fn recorder(live_dir: &Path) -> Recorder {
    let rec = Recorder::new(ObsConfig::default());
    std::fs::create_dir_all(live_dir).unwrap();
    rec.enable_live(LiveConfig {
        every: 4,
        dir: Some(live_dir.to_path_buf()),
        ..LiveConfig::default()
    });
    rec
}

/// One checkpointed + spilling + live-sampling run — the execution shape
/// that visits every registered failpoint site.
fn run_in(
    dir: &Path,
    resume: bool,
    degraded_ok: bool,
    pair: &KgPair,
    seeds: &AlignmentSeeds,
    rec: &Recorder,
) -> Result<largeea_core::LargeEaReport, RunError> {
    let c = cfg();
    let mut ckpt = Checkpoint::open(&dir.join("ckpt"), c.run_meta(seeds, ROUNDS), resume, rec)
        .map_err(RunError::Ckpt)?;
    let mut exec = ExecOptions::from_flags(None, Some(dir.join("spill")));
    exec.supervision.degraded_ok = degraded_ok;
    LargeEa::new(c).run_exec(pair, seeds, ROUNDS, rec, Some(&mut ckpt), &exec)
}

#[test]
fn chaos_sweep_holds_the_crash_only_invariant() {
    let (pair, seeds) = fixture();
    let registry = registered_failpoints();

    // --- registry coverage, both ways -----------------------------------
    // every subsystem-declared failpoint is in the sweep's registry…
    for name in checkpoint::FAILPOINTS.iter().chain(spill::FAILPOINTS) {
        assert!(
            registry.iter().any(|fp| fp.name == *name),
            "subsystem failpoint {name:?} missing from registered_failpoints()"
        );
    }
    // …and the registry names nothing the sweep would aim at a dead site
    assert!(
        registry.iter().any(|fp| fp.name == "live.write"),
        "live.write missing from the registry"
    );

    // --- fault-free oracle ------------------------------------------------
    let base_dir = scratch("baseline");
    let rec = recorder(&base_dir.join("live"));
    let base = run_in(&base_dir, false, false, &pair, &seeds, &rec).expect("fault-free oracle");
    assert!(
        !base.degraded.is_degraded(),
        "a fault-free run must not be degraded"
    );
    assert_eq!(
        base.trace.counter("retry.attempts"),
        0,
        "a fault-free run must not record retries"
    );

    // err-mode faults that sites absorb by contract instead of dying:
    // the live sampler swallows snapshot errors into `live.write_errors`,
    // and epoch progress is best-effort (resume never depends on it).
    let absorbed_err: &[&str] = &["live.write", "ckpt.progress"];

    // silence the injected panics while the matrix runs
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    for fp in &registry {
        for mode in ["err", "panic", "partial", "transient"] {
            let spec = format!("{}={mode}@1", fp.name);
            let tag = spec.replace(['=', '@', '.'], "_");
            let dir = scratch(&tag);
            failpoint::configure(&spec).expect("valid spec");
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let rec = recorder(&dir.join("live"));
                run_in(&dir, false, false, &pair, &seeds, &rec)
            }));
            failpoint::clear();
            match outcome {
                // outcome 1: absorbed — must be bit-identical to the oracle
                Ok(Ok(report)) => {
                    assert_eq!(report.sim, base.sim, "[{spec}] absorbed run's M differs");
                    assert_eq!(
                        report.eval, base.eval,
                        "[{spec}] absorbed run's metrics differ"
                    );
                    assert!(
                        !report.degraded.is_degraded(),
                        "[{spec}] non-degraded-ok run claims degradation"
                    );
                    match mode {
                        "transient" if fp.name == "live.write" => assert!(
                            report.trace.counter("live.write_errors") >= 1,
                            "[{spec}] swallowed fault left no trace evidence"
                        ),
                        // the ISSUE's acceptance bar: transient@1 on any
                        // spill/checkpoint write is absorbed by retry and
                        // says so in the trace
                        "transient" => assert!(
                            report.trace.counter("retry.attempts") >= 1,
                            "[{spec}] absorbed transient fault recorded no retry"
                        ),
                        "err" => assert!(
                            absorbed_err.contains(&fp.name),
                            "[{spec}] err at a must-die site was silently absorbed"
                        ),
                        other => panic!("[{spec}] {other} mode cannot complete"),
                    }
                }
                // outcome 3a: typed death
                Ok(Err(e)) => {
                    assert_ne!(
                        mode, "transient",
                        "[{spec}] transient@1 must be absorbed: {e}"
                    );
                    assert!(
                        matches!(e, RunError::Ckpt(_) | RunError::Spill(_)),
                        "[{spec}] unexpected error class: {e}"
                    );
                }
                // outcome 3b: injected hard crash
                Err(_) => {
                    assert!(
                        mode == "panic" || mode == "partial",
                        "[{spec}] {mode} mode must not panic"
                    );
                }
            }
            // crash-only invariant for every death: nothing half-written
            // was marked durable, so a resume reproduces the oracle
            // bit-identically (absorbed runs resume trivially too).
            let rec = recorder(&dir.join("live"));
            let resumed = run_in(&dir, true, false, &pair, &seeds, &rec)
                .unwrap_or_else(|e| panic!("[{spec}] resume failed: {e}"));
            assert_eq!(resumed.sim, base.sim, "[{spec}] resumed M differs");
            assert_eq!(resumed.eval, base.eval, "[{spec}] resumed metrics differ");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    std::panic::set_hook(prev_hook);

    // --- outcome 2: honest degradation under --degraded-ok ----------------
    // (a) losing the whole name channel degrades to structure-only
    {
        let dir = scratch("degraded_name");
        failpoint::configure("spill.write=err@1").unwrap();
        let rec = recorder(&dir.join("live"));
        let report = run_in(&dir, false, true, &pair, &seeds, &rec)
            .expect("--degraded-ok absorbs the lost channel");
        failpoint::clear();
        assert!(report.degraded.name_channel, "name channel must be flagged");
        assert!(report.degraded.is_degraded());
        assert!(report.trace.counter("degraded.name_channel") >= 1);
        assert_eq!(
            report.eval.evaluated,
            seeds.test.len(),
            "a degraded run still evaluates every test pair"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    // (b) a batch whose checkpoint writes keep failing is quarantined —
    // durably, in the manifest — and the pipeline continues without it
    {
        let dir = scratch("degraded_batch");
        failpoint::configure("ckpt.sim=err@1").unwrap();
        let rec = recorder(&dir.join("live"));
        let report = run_in(&dir, false, true, &pair, &seeds, &rec)
            .expect("--degraded-ok quarantines the lost batch");
        failpoint::clear();
        assert!(
            !report.degraded.quarantined_batches.is_empty(),
            "lost batch must be quarantined"
        );
        assert!(report
            .degraded
            .quarantined_batches
            .iter()
            .all(|k| k.starts_with("r0.b")));
        assert!(report.trace.counter("degraded.batches") >= 1);
        // the quarantine record is durable: a reopened checkpoint shows it
        let rec2 = Recorder::new(ObsConfig::default());
        let c = cfg();
        let ckpt = Checkpoint::open(&dir.join("ckpt"), c.run_meta(&seeds, ROUNDS), true, &rec2)
            .expect("reopen checkpoint");
        let quarantined: Vec<&str> = ckpt.quarantined().collect();
        assert_eq!(
            quarantined,
            report
                .degraded
                .quarantined_batches
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
            "manifest quarantine records disagree with the report"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    std::fs::remove_dir_all(&base_dir).ok();
}
