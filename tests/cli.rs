//! Integration tests for the `largeea` CLI binary: the full
//! generate → stats → partition → align → eval workflow a user would run.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_largeea"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("largeea_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("generate"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn missing_required_flag_fails() {
    let out = bin()
        .args(["generate", "--scale", "0.01"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--preset"), "{err}");
}

#[test]
fn full_workflow_generate_stats_partition_align_eval() {
    let dir = tempdir("workflow");
    let data = dir.join("data");
    let preds = dir.join("predictions.tsv");

    // generate
    let out = bin()
        .args([
            "generate",
            "--preset",
            "ids15k-en-fr",
            "--scale",
            "0.01",
            "--out",
        ])
        .arg(&data)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(data.join("rel_triples_1").exists());
    assert!(data.join("ent_links").exists());

    // stats
    let out = bin().args(["stats", "--data"]).arg(&data).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ground-truth links: 150"), "{text}");

    // partition
    let ptrace_path = dir.join("partition_trace.json");
    let out = bin()
        .args(["partition", "--data"])
        .arg(&data)
        .args(["--k", "2", "--strategy", "cps", "--trace-out"])
        .arg(&ptrace_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("retention"), "{text}");
    assert!(text.contains("batch  0"), "{text}");
    let ptrace = std::fs::read_to_string(&ptrace_path).unwrap();
    assert!(ptrace.contains("\"cps_reweight\""), "{ptrace}");
    assert!(ptrace.contains("\"cps.virtual_edges\""), "{ptrace}");

    // align (small settings to stay fast), with a run trace
    let trace_path = dir.join("run_trace.json");
    let out = bin()
        .args(["align", "--data"])
        .arg(&data)
        .args([
            "--model", "gcn", "--k", "2", "--epochs", "15", "--dim", "32", "--out",
        ])
        .arg(&preds)
        .arg("--trace-out")
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("H@1"), "{text}");
    assert!(text.contains("wrote run trace"), "{text}");
    assert!(preds.exists());
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace.starts_with("{\"version\":2,\"spans\":["), "{trace}");
    // one sub-stage span from every instrumented subsystem (ISSUE §S0.5):
    // per-epoch training, per-pass refinement, per-block name search
    for span in [
        "\"pipeline\"",
        "\"epoch\"",
        "\"refine_pass\"",
        "\"sens_block\"",
    ] {
        assert!(trace.contains(span), "trace missing {span}");
    }

    // eval
    let out = bin()
        .args(["eval", "--data"])
        .arg(&data)
        .arg("--predictions")
        .arg(&preds)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("F1"), "{text}");
    // name-rich synthetic data: the decoded alignment should be mostly right
    let recall: f64 = text
        .split("recall ")
        .nth(1)
        .and_then(|s| s.split('%').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("recall parsed");
    assert!(recall > 50.0, "recall {recall} too low: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_align_survives_crash_and_resumes_identically() {
    let dir = tempdir("ckpt");
    let data = dir.join("data");
    let out = bin()
        .args([
            "generate",
            "--preset",
            "ids15k-en-fr",
            "--scale",
            "0.01",
            "--out",
        ])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success());

    let align = |extra_env: Option<(&str, &str)>, ckpt: &PathBuf, resume: bool, sim: &PathBuf| {
        let mut cmd = bin();
        cmd.args(["align", "--data"])
            .arg(&data)
            .args(["--model", "gcn", "--k", "2", "--epochs", "5", "--dim", "16"])
            .arg("--checkpoint-dir")
            .arg(ckpt)
            .arg("--sim-out")
            .arg(sim);
        if resume {
            cmd.arg("--resume");
        }
        if let Some((k, v)) = extra_env {
            cmd.env(k, v);
        }
        cmd.output().unwrap()
    };

    // uninterrupted baseline
    let base_sim = dir.join("base.sim");
    let out = align(None, &dir.join("ckpt_base"), false, &base_sim);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // a run killed mid-similarity-write by an injected failpoint...
    let crash_ckpt = dir.join("ckpt_crash");
    let crash_sim = dir.join("crash.sim");
    let out = align(
        Some(("LARGEEA_FAILPOINTS", "ckpt.sim=panic@1")),
        &crash_ckpt,
        false,
        &crash_sim,
    );
    assert!(
        !out.status.success(),
        "injected failpoint must kill the run"
    );
    assert!(
        !crash_sim.exists(),
        "the crashed run must not produce output"
    );

    // ...resumes to a bit-identical similarity matrix
    let out = align(None, &crash_ckpt, true, &crash_sim);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&base_sim).unwrap(),
        std::fs::read(&crash_sim).unwrap(),
        "resumed run produced a different similarity matrix"
    );

    // checkpoint counters surface in `trace summarize` (a fully warm
    // resume: everything loads, nothing is written)
    let trace_path = dir.join("resume_trace.json");
    let out = bin()
        .args(["align", "--data"])
        .arg(&data)
        .args(["--model", "gcn", "--k", "2", "--epochs", "5", "--dim", "16"])
        .arg("--checkpoint-dir")
        .arg(&crash_ckpt)
        .arg("--resume")
        .arg("--trace-out")
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["trace", "summarize"])
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("ckpt.resume_skipped_stages"),
        "summarize missing resume counter: {text}"
    );
    // and a fresh checkpointed run reports its write volume
    let fresh_trace = dir.join("fresh_trace.json");
    let out = bin()
        .args(["align", "--data"])
        .arg(&data)
        .args(["--model", "gcn", "--k", "2", "--epochs", "5", "--dim", "16"])
        .arg("--checkpoint-dir")
        .arg(dir.join("ckpt_fresh"))
        .arg("--trace-out")
        .arg(&fresh_trace)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["trace", "summarize"])
        .arg(&fresh_trace)
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("ckpt.write_bytes"),
        "summarize missing write counter: {text}"
    );

    // the checkpoint directory is inspectable
    let out = bin()
        .args(["ckpt", "inspect"])
        .arg(&crash_ckpt)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["config_hash", "stages", "fused", "r0.partition"] {
        assert!(
            text.contains(needle),
            "inspect output missing {needle:?}: {text}"
        );
    }

    // --resume without --checkpoint-dir is a usage error
    let out = bin()
        .args(["align", "--data"])
        .arg(&data)
        .arg("--resume")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--checkpoint-dir"), "{err}");

    // inspecting a non-checkpoint directory fails cleanly
    let out = bin().args(["ckpt", "inspect"]).arg(&data).output().unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failpoints_list_matches_the_registry() {
    let out = bin().args(["failpoints", "list"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let listed: Vec<&str> = text
        .lines()
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    let registry = largeea::core::registered_failpoints();
    assert_eq!(
        listed.len(),
        registry.len(),
        "`failpoints list` and the registry disagree: {text}"
    );
    for (line_name, fp) in listed.iter().zip(&registry) {
        assert_eq!(*line_name, fp.name);
        assert!(text.contains(fp.site), "missing site text for {}", fp.name);
    }
    // anything but `list` is a usage error
    let out = bin().args(["failpoints", "arm"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// The documented exit-code taxonomy (see `largeea --help`): every
/// `RunError` variant maps to its own process exit code so scripts and
/// supervisors can tell a budget blow-up from a fault that outlived its
/// retries. (`RunError::Audit` → 5 is exercised by `tests/heap_audit.rs`
/// at the library layer; forcing real allocator drift from the CLI would
/// need an uninstrumented binary.)
#[test]
fn exit_codes_follow_the_documented_taxonomy() {
    let dir = tempdir("exitcodes");
    let data = dir.join("data");
    let out = bin()
        .args([
            "generate",
            "--preset",
            "ids15k-en-fr",
            "--scale",
            "0.01",
            "--out",
        ])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success());

    // 2: usage — unknown command, malformed flags, no command at all
    assert_eq!(
        bin().arg("frobnicate").output().unwrap().status.code(),
        Some(2)
    );
    assert_eq!(
        bin()
            .args(["align", "notaflag"])
            .output()
            .unwrap()
            .status
            .code(),
        Some(2)
    );
    assert_eq!(bin().output().unwrap().status.code(), Some(2));

    // 1: generic error — a missing required flag value
    assert_eq!(
        bin()
            .args(["eval", "--data"])
            .arg(&data)
            .output()
            .unwrap()
            .status
            .code(),
        Some(1)
    );

    let align = |tag: &str, extra: &[&str], failpoints: Option<&str>| {
        let mut cmd = bin();
        cmd.args(["align", "--data"])
            .arg(&data)
            .args(["--model", "gcn", "--k", "2", "--epochs", "3", "--dim", "16"]);
        for a in extra {
            if *a == "@dir" {
                cmd.arg(dir.join(tag));
            } else {
                cmd.arg(a);
            }
        }
        if let Some(fp) = failpoints {
            cmd.env("LARGEEA_FAILPOINTS", fp);
        }
        cmd.output().unwrap()
    };

    // 3: RunError::Budget — a 1-byte budget is exceeded by the first charge
    let out = align("budget", &["--mem-budget", "1"], None);
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 4: RunError::Ckpt — a fatal (non-retryable) injected manifest failure
    let out = align(
        "ckpt",
        &["--checkpoint-dir", "@dir"],
        Some("ckpt.manifest=err@1"),
    );
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 6: RunError::Spill — a fatal injected spill-write failure
    let out = align("spill", &["--spill-dir", "@dir"], Some("spill.write=err@1"));
    assert_eq!(
        out.status.code(),
        Some(6),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 7: RunError::Exhausted — a transient fault deeper than site-level
    // backoff (4 attempts) × batch-level re-execution (4 attempts)
    let out = align(
        "exhausted",
        &["--checkpoint-dir", "@dir"],
        Some("ckpt.sim=transient@999"),
    );
    assert_eq!(
        out.status.code(),
        Some(7),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("retries exhausted"), "{err}");

    // 8: RunError::Quarantined — degradation allowed, but both channels
    // are lost to I/O faults: nothing left to degrade to
    let out = align(
        "quarantined",
        &["--checkpoint-dir", "@dir", "--degraded-ok"],
        Some("ckpt.name=err@1,ckpt.partition=err@1"),
    );
    assert_eq!(
        out.status.code(),
        Some(8),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no usable channel"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

/// `--degraded-ok` turns a lost name channel into an honestly-flagged
/// structure-only run: exit 0, a DEGRADED line on stdout, and
/// `degraded.*` markers in the trace (and therefore `trace summarize`).
#[test]
fn degraded_ok_completes_structure_only_and_flags_it() {
    let dir = tempdir("degraded");
    let data = dir.join("data");
    let out = bin()
        .args([
            "generate",
            "--preset",
            "ids15k-en-fr",
            "--scale",
            "0.01",
            "--out",
        ])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success());

    let trace_path = dir.join("degraded_trace.json");
    let out = bin()
        .args(["align", "--data"])
        .arg(&data)
        .args(["--model", "gcn", "--k", "2", "--epochs", "3", "--dim", "16"])
        .arg("--spill-dir")
        .arg(dir.join("spill"))
        .arg("--degraded-ok")
        .arg("--trace-out")
        .arg(&trace_path)
        .env("LARGEEA_FAILPOINTS", "spill.write=err@1")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "degraded-ok run must complete: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DEGRADED"), "{text}");
    assert!(text.contains("name_channel"), "{text}");
    assert!(text.contains("H@1"), "degraded run still evaluates: {text}");
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace.contains("degraded.name_channel"), "{trace}");

    // the degradation counters surface in `trace summarize`
    let out = bin()
        .args(["trace", "summarize"])
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("degraded.name_channel"), "{text}");

    // without --degraded-ok the same fault is terminal (exit 6: Spill)
    let out = bin()
        .args(["align", "--data"])
        .arg(&data)
        .args(["--model", "gcn", "--k", "2", "--epochs", "3", "--dim", "16"])
        .arg("--spill-dir")
        .arg(dir.join("spill2"))
        .env("LARGEEA_FAILPOINTS", "spill.write=err@1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(6));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unsupervised_align_runs() {
    let dir = tempdir("unsup");
    let data = dir.join("data");
    let out = bin()
        .args([
            "generate",
            "--preset",
            "ids15k-en-de",
            "--scale",
            "0.008",
            "--out",
        ])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["align", "--data"])
        .arg(&data)
        .args([
            "--model",
            "gcn",
            "--k",
            "1",
            "--epochs",
            "10",
            "--dim",
            "16",
            "--unsupervised",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pseudo seeds"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}
