//! Crash-consistency suite: for every registered checkpoint failpoint, run
//! the pipeline to injected death, resume, and assert the final fused
//! matrix and eval metrics are **bit-identical** to an uninterrupted run.
//!
//! The determinism guarantees of the substrate (seeded PRNG, bit-identical
//! results at any pool width, independent per-batch training seeds) are the
//! oracle: if resume skips exactly the completed stages and recomputes the
//! rest, the outputs cannot differ by even one bit.
//!
//! Failpoint state is process-global, so the whole matrix runs inside one
//! `#[test]`.

use largeea_common::failpoint;
use largeea_common::obs::{ObsConfig, Recorder};
use largeea_core::checkpoint::{Checkpoint, CkptError, FAILPOINTS};
use largeea_core::pipeline::{LargeEa, LargeEaConfig};
use largeea_core::structure_channel::StructureChannelConfig;
use largeea_data::Preset;
use largeea_kg::{AlignmentSeeds, KgPair};
use largeea_models::{ModelKind, TrainConfig};
use largeea_sim::SparseSimMatrix;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

const ROUNDS: usize = 1;

fn cfg() -> LargeEaConfig {
    LargeEaConfig {
        structure: StructureChannelConfig {
            k: 2,
            model: ModelKind::GcnAlign,
            train: TrainConfig {
                epochs: 6,
                dim: 16,
                ..Default::default()
            },
            top_k: 5,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn fixture() -> (KgPair, AlignmentSeeds) {
    let pair = Preset::Ids15kEnFr.spec(0.01).generate();
    let seeds = pair.split_seeds(0.2, 5);
    (pair, seeds)
}

fn ckpt_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("largeea_crash_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs the checkpointed pipeline in `dir`; returns `(sim, eval)`.
fn run_in(
    dir: &Path,
    pair: &KgPair,
    seeds: &AlignmentSeeds,
    resume: bool,
    rec: &Recorder,
) -> Result<(SparseSimMatrix, largeea_core::EvalResult), CkptError> {
    let c = cfg();
    let mut ckpt = Checkpoint::open(dir, c.run_meta(seeds, ROUNDS), resume, rec)?;
    let report = LargeEa::new(c).run_checkpointed(pair, seeds, ROUNDS, rec, &mut ckpt)?;
    Ok((report.sim, report.eval))
}

#[test]
fn every_failpoint_crashes_then_resumes_bit_identically() {
    let (pair, seeds) = fixture();
    let rec = Recorder::new(ObsConfig::default());

    // --- oracle: an uninterrupted checkpointed run ------------------------
    let base_dir = ckpt_dir("baseline");
    let (base_sim, base_eval) =
        run_in(&base_dir, &pair, &seeds, false, &rec).expect("baseline run");

    // checkpointing itself must not change results: the block-merge path
    // is bit-identical to the direct-fill path
    let plain = LargeEa::new(cfg()).run_recorded(&pair, &seeds, ROUNDS, &rec);
    assert_eq!(
        plain.sim, base_sim,
        "checkpointing changed the fused matrix"
    );
    assert_eq!(plain.eval, base_eval, "checkpointing changed the metrics");

    // --- resuming a completed run loads everything ------------------------
    {
        let rec2 = Recorder::new(ObsConfig::default());
        let (sim, eval) = run_in(&base_dir, &pair, &seeds, true, &rec2).expect("warm resume");
        assert_eq!(sim, base_sim);
        assert_eq!(eval, base_eval);
        // name + r0.partition + r0.ms (which short-circuits the per-batch
        // stages) + fused
        assert!(
            rec2.trace().counter("ckpt.resume_skipped_stages") >= 4,
            "a completed run should load, not recompute"
        );
    }

    // --- the crash matrix: one scenario per registered failpoint ----------
    // (spec per failpoint: partial = torn write + death, panic = death
    // before the write, err = clean injected I/O failure)
    let scenarios: &[(&str, &str)] = &[
        ("ckpt.manifest", "ckpt.manifest=partial@2"),
        ("ckpt.name", "ckpt.name=partial"),
        ("ckpt.partition", "ckpt.partition=partial"),
        ("ckpt.emb", "ckpt.emb=partial@2"),
        ("ckpt.sim", "ckpt.sim=panic@2"),
        ("ckpt.ms", "ckpt.ms=partial"),
        ("ckpt.fused", "ckpt.fused=partial"),
        ("ckpt.progress", "ckpt.progress=panic"),
        // a second flavour for the error (non-panic) propagation path
        ("ckpt.emb", "ckpt.emb=err"),
    ];
    // every registered failpoint must have at least one scenario, and no
    // scenario may name an unregistered failpoint
    for (fp, _) in scenarios {
        assert!(FAILPOINTS.contains(fp), "scenario uses unregistered {fp:?}");
    }
    for fp in FAILPOINTS {
        assert!(
            scenarios.iter().any(|(s, _)| s == fp),
            "registered failpoint {fp:?} has no crash scenario"
        );
    }

    // silence the expected panic reports while the matrix runs
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for (fp, spec) in scenarios {
        let dir = ckpt_dir(&spec.replace(['=', '@', '.'], "_"));
        failpoint::configure(spec).expect("valid spec");
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let rec = Recorder::new(ObsConfig::default());
            run_in(&dir, &pair, &seeds, false, &rec)
        }));
        failpoint::clear();
        let died = match outcome {
            Err(_) => true,                    // injected panic / torn write
            Ok(Err(CkptError::Io(_))) => true, // injected clean error
            Ok(Err(e)) => panic!("[{spec}] unexpected checkpoint error: {e}"),
            Ok(Ok(_)) => false,
        };
        assert!(
            died,
            "[{spec}] failpoint {fp} never fired — dead write site?"
        );

        let rec = Recorder::new(ObsConfig::default());
        let (sim, eval) = run_in(&dir, &pair, &seeds, true, &rec)
            .unwrap_or_else(|e| panic!("[{spec}] resume failed: {e}"));
        assert_eq!(sim, base_sim, "[{spec}] resumed fused matrix differs");
        assert_eq!(eval, base_eval, "[{spec}] resumed metrics differ");
        std::fs::remove_dir_all(&dir).ok();
    }
    std::panic::set_hook(prev_hook);

    // --- corrupting a done artifact forces a recompute, not a wrong load --
    {
        let rec = Recorder::new(ObsConfig::default());
        // r0.ms is what a warm resume actually reads (it short-circuits the
        // per-batch stages) — corrupting it forces the block-rebuild path
        let ms = base_dir.join("r0.ms.ckpt");
        let mut raw = std::fs::read(&ms).expect("baseline wrote r0.ms");
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&ms, &raw).unwrap();
        let (sim, eval) = run_in(&base_dir, &pair, &seeds, true, &rec).expect("resume");
        assert_eq!(sim, base_sim, "corrupt artifact leaked into the result");
        assert_eq!(eval, base_eval);
        assert!(rec.trace().counter("ckpt.artifact_corrupt") >= 1);
    }

    // --- a mismatched run is refused with a typed error --------------------
    {
        let rec = Recorder::new(ObsConfig::default());
        let mut other = cfg();
        other.structure.seed ^= 1;
        match Checkpoint::open(&base_dir, other.run_meta(&seeds, ROUNDS), true, &rec) {
            Err(CkptError::Mismatch { field, .. }) => {
                assert!(field == "config_hash" || field == "seed", "field {field}");
            }
            other => panic!("expected Mismatch, got {other:?}"),
        }
        // different round count: also refused
        let c = cfg();
        match Checkpoint::open(&base_dir, c.run_meta(&seeds, ROUNDS + 1), true, &rec) {
            Err(CkptError::Mismatch { field, .. }) => {
                assert!(field == "config_hash" || field == "rounds", "field {field}");
            }
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&base_dir).ok();
}
