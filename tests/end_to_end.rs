//! End-to-end integration tests: the full LargeEA pipeline through the
//! public facade, exactly as a downstream user would drive it.

use largeea::core::pipeline::{LargeEa, LargeEaConfig};
use largeea::core::structure_channel::{Partitioner, StructureChannelConfig};
use largeea::data::Preset;
use largeea::kg::AlignmentSeeds;
use largeea::models::{ModelKind, TrainConfig};

fn quick_config(k: usize, model: ModelKind) -> LargeEaConfig {
    LargeEaConfig {
        structure: StructureChannelConfig {
            k,
            model,
            train: TrainConfig {
                epochs: 25,
                dim: 32,
                ..TrainConfig::default()
            },
            top_k: 10,
            ..StructureChannelConfig::default()
        },
        ..LargeEaConfig::default()
    }
}

#[test]
fn supervised_pipeline_aligns_ids_shaped_data() {
    let pair = Preset::Ids15kEnFr.spec(0.02).generate();
    let seeds = pair.split_seeds(0.2, 11);
    let report = LargeEa::new(quick_config(2, ModelKind::GcnAlign)).run(&pair, &seeds);
    assert!(report.eval.hits1 > 50.0, "H@1 = {}", report.eval.hits1);
    assert!(report.eval.hits5 >= report.eval.hits1);
    assert!(report.eval.mrr > 0.5);
    assert_eq!(report.eval.evaluated, seeds.test.len());
}

#[test]
fn unsupervised_matches_supervised_within_margin() {
    // The paper's §3.5 claim: DA-generated seeds are good enough that the
    // unsupervised run lands near the supervised one.
    let pair = Preset::Ids15kEnDe.spec(0.02).generate();
    let supervised_seeds = pair.split_seeds(0.2, 3);
    let unsupervised_seeds = AlignmentSeeds {
        train: vec![],
        test: pair.alignment.clone(),
    };
    let cfg = quick_config(2, ModelKind::GcnAlign);
    let supervised = LargeEa::new(cfg).run(&pair, &supervised_seeds);
    let unsupervised = LargeEa::new(cfg).run(&pair, &unsupervised_seeds);
    assert!(unsupervised.pseudo_seeds > 0);
    assert!(
        unsupervised.eval.hits1 > supervised.eval.hits1 - 15.0,
        "unsupervised {} far below supervised {}",
        unsupervised.eval.hits1,
        supervised.eval.hits1
    );
}

#[test]
fn both_models_work_end_to_end() {
    let pair = Preset::Ids15kEnFr.spec(0.015).generate();
    let seeds = pair.split_seeds(0.3, 5);
    for model in [ModelKind::GcnAlign, ModelKind::Rrea] {
        let report = LargeEa::new(quick_config(2, model)).run(&pair, &seeds);
        assert!(
            report.eval.hits1 > 40.0,
            "{model:?} H@1 = {}",
            report.eval.hits1
        );
    }
}

#[test]
fn pipeline_is_deterministic() {
    let pair = Preset::Ids15kEnFr.spec(0.01).generate();
    let seeds = pair.split_seeds(0.2, 9);
    let cfg = quick_config(2, ModelKind::GcnAlign);
    let a = LargeEa::new(cfg).run(&pair, &seeds);
    let b = LargeEa::new(cfg).run(&pair, &seeds);
    assert_eq!(a.eval.hits1, b.eval.hits1);
    assert_eq!(a.pseudo_seeds, b.pseudo_seeds);
}

#[test]
fn ablations_order_sanely() {
    // name channel is the strong signal on name-rich synthetic data;
    // random guessing is the floor
    let pair = Preset::Ids15kEnFr.spec(0.02).generate();
    let seeds = pair.split_seeds(0.2, 13);
    let full = LargeEa::new(quick_config(2, ModelKind::GcnAlign)).run(&pair, &seeds);
    let name_only = LargeEa::new(LargeEaConfig {
        use_structure: false,
        ..quick_config(2, ModelKind::GcnAlign)
    })
    .run(&pair, &seeds);
    let structure_only = LargeEa::new(LargeEaConfig {
        use_name: false,
        use_augmentation: false,
        ..quick_config(2, ModelKind::GcnAlign)
    })
    .run(&pair, &seeds);
    assert!(full.eval.hits1 >= structure_only.eval.hits1);
    assert!(name_only.eval.hits1 > 2.0 * structure_only.eval.hits1.max(1.0) / 2.0);
    // fusion should not fall far below the stronger channel
    assert!(full.eval.hits1 >= name_only.eval.hits1 - 10.0);
}

#[test]
fn partitioner_choice_affects_structure_channel_only() {
    let pair = Preset::Ids15kEnFr.spec(0.015).generate();
    let seeds = pair.split_seeds(0.3, 17);
    let mut vps_cfg = quick_config(3, ModelKind::GcnAlign);
    vps_cfg.structure.partitioner = Partitioner::Vps;
    vps_cfg.use_name = false;
    vps_cfg.use_augmentation = false;
    let mut cps_cfg = quick_config(3, ModelKind::GcnAlign);
    cps_cfg.use_name = false;
    cps_cfg.use_augmentation = false;

    let vps_run = LargeEa::new(vps_cfg).run(&pair, &seeds);
    let cps_run = LargeEa::new(cps_cfg).run(&pair, &seeds);
    let (rv, rc) = (
        vps_run.retention.expect("structure ran"),
        cps_run.retention.expect("structure ran"),
    );
    assert!(
        rc.test > rv.test,
        "CPS test retention {} should beat VPS {}",
        rc.test,
        rv.test
    );
    assert!(cps_run.edge_cut_rate < vps_run.edge_cut_rate);
}

#[test]
fn dbp1m_shape_with_unknown_entities_runs() {
    let pair = Preset::Dbp1mEnFr.spec(0.001).generate();
    assert!(pair.source.num_entities() > pair.alignment.len());
    let seeds = pair.split_seeds(0.2, 21);
    let report = LargeEa::new(quick_config(4, ModelKind::GcnAlign)).run(&pair, &seeds);
    // unknown entities make this harder, but the pipeline must stay sound
    assert!(report.eval.hits1 > 20.0, "H@1 = {}", report.eval.hits1);
    assert!(report.edge_cut_rate >= 0.0 && report.edge_cut_rate <= 1.0);
}
