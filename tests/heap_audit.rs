//! The `--mem-audit` loop end to end (DESIGN.md §S0.10): this facade test
//! binary runs under the instrumented allocator `src/lib.rs` installs, so
//! library-level runs really measure heap peaks; the CLI tests drive the
//! `largeea` binary, including the deliberate-leak hook that must make the
//! audit fail with the typed error, and `trace heap`'s rendering.

use largeea::common::obs::{ObsConfig, Recorder};
use largeea::core::mem::MemAuditError;
use largeea::core::pipeline::{ExecOptions, LargeEa, LargeEaConfig, RunError};
use largeea::core::structure_channel::StructureChannelConfig;
use largeea::data::Preset;
use largeea::models::{ModelKind, TrainConfig};
use std::path::{Path, PathBuf};
use std::process::Command;

fn quick_config() -> LargeEaConfig {
    LargeEaConfig {
        structure: StructureChannelConfig {
            k: 2,
            model: ModelKind::GcnAlign,
            train: TrainConfig {
                epochs: 8,
                dim: 16,
                ..TrainConfig::default()
            },
            top_k: 10,
            ..StructureChannelConfig::default()
        },
        ..LargeEaConfig::default()
    }
}

#[test]
fn library_level_audit_passes_and_reports_a_measured_peak() {
    let pair = Preset::Ids15kEnFr.spec(0.01).generate();
    let seeds = pair.split_seeds(0.2, 42);
    let rec = Recorder::new(ObsConfig {
        heap: true,
        ..ObsConfig::default()
    });
    let exec = ExecOptions {
        mem_audit: true,
        ..ExecOptions::default()
    };
    let report = LargeEa::new(quick_config())
        .run_exec(&pair, &seeds, 1, &rec, None, &exec)
        .expect("tracked and measured peaks must reconcile on an in-RAM run");
    let measured = report
        .measured_heap_peak_bytes
        .expect("instrumented process reports a measured peak");
    assert!(measured > 0);
    assert!(
        report.tracked_peak_bytes > 0,
        "the pipeline charges its big buffers"
    );

    // The heap-enabled recorder attributed allocations to spans: the trace
    // carries alloc.* fields on the pipeline span.
    let root = &report.trace.spans[0];
    assert_eq!(root.name, "pipeline");
    let bytes = root
        .field_u64("alloc.bytes")
        .expect("pipeline span has alloc.bytes");
    assert!(bytes > 0);
    assert!(root.field_u64("alloc.count").is_some());
    assert!(root.field_u64("alloc.peak").is_some());
    // And the measured (whole-run) peak covers the span-attributed one.
    assert!(measured as u64 >= root.field_u64("alloc.peak").unwrap());
}

#[test]
fn audit_failure_surfaces_as_a_typed_error_under_the_leak_hook() {
    // The leak hook is read from the environment inside run_exec, so this
    // must stay a subprocess concern for the CLI; at the library level we
    // simulate the same drift by auditing a tracker against an impossible
    // measured peak.
    let tracker = largeea::core::MemTracker::new();
    let err = tracker
        .audit(1 << 30)
        .expect_err("1 GiB measured against empty books must fail");
    match err {
        MemAuditError::Untracked {
            tracked, measured, ..
        } => {
            assert_eq!(tracked, 0);
            assert_eq!(measured, 1 << 30);
        }
        other => panic!("wrong variant: {other}"),
    }
    // ...and the pipeline wraps it in RunError::Audit (exercised via the
    // typed conversion the run path uses).
    let run_err: RunError = err.into();
    assert!(matches!(
        run_err,
        RunError::Audit(MemAuditError::Untracked { .. })
    ));
    assert!(run_err.to_string().contains("mem-audit"));
}

// --- CLI ------------------------------------------------------------------

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_largeea"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("largeea_heapaudit_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_data(dir: &Path) -> PathBuf {
    let data = dir.join("data");
    let out = bin()
        .args([
            "generate",
            "--preset",
            "ids15k-en-fr",
            "--scale",
            "0.01",
            "--out",
        ])
        .arg(&data)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    data
}

fn align_audit(data: &Path, trace: Option<&Path>, leak: Option<u64>) -> std::process::Output {
    let mut cmd = bin();
    cmd.args(["align", "--data"])
        .arg(data)
        .args(["--model", "gcn", "--k", "2", "--epochs", "6", "--dim", "16"])
        .arg("--mem-audit");
    if let Some(path) = trace {
        cmd.arg("--trace-out").arg(path);
    }
    if let Some(bytes) = leak {
        cmd.env("LARGEEA_HEAP_LEAK", bytes.to_string());
    }
    cmd.output().unwrap()
}

#[test]
fn cli_mem_audit_passes_and_a_deliberate_leak_fails_it() {
    let dir = tempdir("cli");
    let data = generate_data(&dir);
    let trace = dir.join("run.json");

    let ok = align_audit(&data, Some(&trace), None);
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(
        ok.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(stdout.contains("mem-audit OK: tracked peak"), "{stdout}");

    // An un-charged 256 MiB reservation blows past ratio × tracked + slack
    // on this tiny workload: the audit must fail with the typed message,
    // not a panic and not a silent pass.
    let leaked = align_audit(&data, None, Some(1 << 28));
    assert!(
        !leaked.status.success(),
        "the leak hook must fail the audit"
    );
    let stderr = String::from_utf8_lossy(&leaked.stderr);
    assert!(
        stderr.contains("mem-audit: measured heap peak"),
        "expected the Untracked audit error, got: {stderr}"
    );
    assert!(stderr.contains("missing its MemTracker charge"), "{stderr}");

    // The passing run's trace drives `trace heap`: tree, top table, and
    // byte-stable output.
    let heap = |extra: &[&str]| {
        let mut cmd = bin();
        cmd.args(["trace", "heap"]).arg(&trace).args(extra);
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let tree = heap(&[]);
    assert!(tree.contains("pipeline"), "{tree}");
    assert!(tree.contains("top "), "{tree}");
    assert!(tree.contains("by self bytes"), "{tree}");
    assert_eq!(tree, heap(&[]), "trace heap must be byte-stable");
    let folded = heap(&["--folded"]);
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("pipeline;") && l.rsplit_once(' ').is_some()),
        "{folded}"
    );
    for line in folded.lines() {
        let (_, bytes) = line.rsplit_once(' ').expect("folded line has a value");
        bytes.parse::<u64>().expect("self bytes are integers");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_heap_renders_a_handcrafted_profile_deterministically() {
    let dir = tempdir("golden");
    let path = dir.join("t.json");
    // pipeline allocated 10240 in 10 allocs; train and fusion account for
    // 6144 + 2048 of it, leaving 2048 self bytes on pipeline.
    std::fs::write(
        &path,
        concat!(
            r#"{"version":2,"spans":[{"name":"pipeline","seconds":1.0,"#,
            r#""fields":{"alloc.bytes":10240,"alloc.count":10,"alloc.peak":8192},"children":["#,
            r#"{"name":"train","seconds":0.5,"fields":{"alloc.bytes":6144,"alloc.count":6,"alloc.peak":4096},"children":[]},"#,
            r#"{"name":"fusion","seconds":0.2,"fields":{"alloc.bytes":2048,"alloc.count":2,"alloc.peak":2048},"children":[]}"#,
            r#"]}],"counters":{},"gauges":{},"histograms":{},"samples":[]}"#,
        ),
    )
    .unwrap();

    let out = bin().args(["trace", "heap"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    // tree: cumulative and self bytes per span, human units
    assert!(text.contains("pipeline"), "{text}");
    assert!(text.contains("10.0K"), "cumulative bytes in {text}");
    assert!(text.contains("6.0K"), "train cumulative in {text}");
    // top table sorted by self bytes: train (6K) first
    let top = text.find("by self bytes").expect("top table header");
    let train = text[top..].find("train").expect("train in top table");
    let pipe = text[top..].find("pipeline").expect("pipeline in top table");
    assert!(
        train < pipe,
        "train (6K self) must outrank pipeline:\n{text}"
    );

    let folded = bin()
        .args(["trace", "heap", "--folded"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(folded.status.success());
    let folded = String::from_utf8_lossy(&folded.stdout).into_owned();
    assert_eq!(
        folded,
        "pipeline 2048\npipeline;fusion 2048\npipeline;train 6144\n"
    );

    // A trace without alloc fields is a clean, typed failure.
    let bare = dir.join("bare.json");
    std::fs::write(
        &bare,
        r#"{"version":2,"spans":[{"name":"pipeline","seconds":1.0,"fields":{},"children":[]}],"counters":{},"gauges":{},"histograms":{},"samples":[]}"#,
    )
    .unwrap();
    let out = bin().args(["trace", "heap"]).arg(&bare).output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no allocation data"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}
