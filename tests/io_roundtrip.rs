//! Integration tests for dataset IO and generation through the facade.

use largeea::common::check::for_each_case;
use largeea::data::{Language, NameNoise, PairGenConfig, Preset};
use largeea::kg::{io, KgStats};

#[test]
fn generated_pair_roundtrips_through_openea_layout() {
    let pair = Preset::Ids15kEnFr.spec(0.01).generate();
    let dir = std::env::temp_dir().join(format!("largeea_roundtrip_{}", std::process::id()));
    io::save_pair(&pair, &dir).expect("save");
    let loaded = io::load_pair(&dir, "EN", "FR").expect("load");
    std::fs::remove_dir_all(&dir).ok();

    // entities isolated AND unaligned are unrepresentable in the layout;
    // everything else must survive
    assert!(loaded.source.num_entities() <= pair.source.num_entities());
    assert_eq!(loaded.source.num_triples(), pair.source.num_triples());
    assert_eq!(loaded.target.num_triples(), pair.target.num_triples());
    assert_eq!(loaded.alignment.len(), pair.alignment.len());
    // keys and generated labels survive verbatim (label side-files)
    let e0 = pair.alignment[0].0;
    let key = pair.source.entity_key(e0);
    let reloaded_id = loaded.source.entity_id(key).expect("key survives");
    assert_eq!(
        loaded.source.entity_label(reloaded_id),
        pair.source.entity_label(e0)
    );
}

#[test]
fn unicode_labels_survive_roundtrip() {
    use largeea::kg::{KgPair, KnowledgeGraph};
    let mut s = KnowledgeGraph::new("DE");
    s.add_triple_by_name("München", "liegt_in", "Bayern");
    let mut t = KnowledgeGraph::new("FR");
    t.add_triple_by_name("Munich", "situé_en", "Bavière");
    let pair = KgPair::new(
        s.clone(),
        t,
        vec![(s.entity_id("München").unwrap(), largeea::kg::EntityId(0))],
    );
    let dir = std::env::temp_dir().join(format!("largeea_unicode_{}", std::process::id()));
    io::save_pair(&pair, &dir).expect("save");
    let loaded = io::load_pair(&dir, "DE", "FR").expect("load");
    std::fs::remove_dir_all(&dir).ok();
    assert!(loaded.source.entity_id("München").is_some());
    assert!(loaded.target.entity_id("Bavière").is_some());
}

#[test]
fn generator_respects_arbitrary_configs() {
    for_each_case(0x10C0, 16, |rng| {
        let aligned = rng.gen_range(10..200usize);
        let unknown_s = rng.gen_range(0..40usize);
        let unknown_t = rng.gen_range(0..40usize);
        let triples_mult = rng.gen_range(2..6usize);
        let heterogeneity = rng.gen_range(0.0f64..1.0);
        let seed = rng.gen_range(0..10_000u64);
        let cfg = PairGenConfig {
            aligned,
            unknown_source: unknown_s,
            unknown_target: unknown_t,
            relations_source: 8,
            relations_target: 6,
            triples_source: aligned * triples_mult,
            triples_target: aligned * triples_mult / 2,
            heterogeneity,
            communities: 3,
            community_locality: 0.8,
            name_noise: NameNoise::default(),
            source_lang: Language::En,
            target_lang: Language::Fr,
            seed,
        };
        let pair = largeea::data::generate_pair(&cfg);
        assert_eq!(pair.source.num_entities(), aligned + unknown_s);
        assert_eq!(pair.target.num_entities(), aligned + unknown_t);
        assert_eq!(pair.alignment.len(), aligned);
        assert!(pair.validate().is_ok());
        assert_eq!(pair.source.num_triples(), aligned * triples_mult);
        // stats never panic and degree sums are consistent
        let stats = KgStats::of(&pair.source);
        assert!(stats.max_degree >= 1);
    });
}
