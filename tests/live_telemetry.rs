//! Integration tests for live telemetry (`align --live-dir`, DESIGN.md
//! §S0.9): mid-run snapshots parse and the final one is byte-identical to
//! `--trace-out`; sampling is tick-deterministic across same-seed runs; a
//! crash mid-snapshot never corrupts the previous snapshot; and
//! `--mem-budget` without `--spill-dir` announces its tempdir in the trace.

use largeea::common::obs::Trace;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_largeea"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("largeea_live_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn expect_success(out: &std::process::Output) {
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Generates the small fixed-seed dataset once per test dir.
fn generate_data(dir: &Path) -> PathBuf {
    let data = dir.join("data");
    if !data.exists() {
        let out = bin()
            .args([
                "generate",
                "--preset",
                "ids15k-en-fr",
                "--scale",
                "0.01",
                "--out",
            ])
            .arg(&data)
            .output()
            .unwrap();
        expect_success(&out);
    }
    data
}

/// A live-telemetry align run: snapshots every 2 ticks into `live_dir`,
/// final trace to `trace_out`. Extra args/env let callers add `--mem-budget`
/// or arm failpoints.
fn live_align(
    data: &Path,
    live_dir: &Path,
    trace_out: &Path,
    extra_args: &[&str],
    env: Option<(&str, &str)>,
) -> std::process::Output {
    let mut cmd = bin();
    cmd.args(["align", "--data"])
        .arg(data)
        .args(["--model", "gcn", "--k", "2", "--epochs", "8", "--dim", "16"])
        .arg("--live-dir")
        .arg(live_dir)
        .args(["--live-every", "2"])
        .arg("--trace-out")
        .arg(trace_out);
    cmd.args(extra_args);
    if let Some((k, v)) = env {
        cmd.env(k, v);
    }
    cmd.output().unwrap()
}

fn parse_file(path: &Path) -> Trace {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    Trace::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()))
}

#[test]
fn final_snapshot_is_byte_identical_to_trace_out_and_counts_its_writes() {
    let dir = tempdir("final");
    let data = generate_data(&dir);
    let live = dir.join("live");
    let trace_out = dir.join("run.json");
    expect_success(&live_align(&data, &live, &trace_out, &[], None));

    let snapshot_path = live.join("live.trace.json");
    let snapshot = std::fs::read_to_string(&snapshot_path).unwrap();
    let final_trace = std::fs::read_to_string(&trace_out).unwrap();
    assert_eq!(
        snapshot, final_trace,
        "the flushed snapshot must be byte-identical to --trace-out"
    );

    let trace = parse_file(&snapshot_path);
    // Every periodic snapshot plus the final flush bumps `live.writes`
    // before writing, so the count in the file includes itself. The run
    // has far more than 2 ticks at cadence 2 — this is the "at least two
    // mid-run snapshots" acceptance bar with margin.
    assert!(
        trace.counter("live.writes") >= 3,
        "expected >= 3 snapshot writes, got {}",
        trace.counter("live.writes")
    );
    assert_eq!(trace.counter("live.write_errors"), 0);
    assert!(
        !trace.samples.is_empty(),
        "the sample ring must survive into the final trace"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sampling_is_tick_deterministic_across_same_seed_runs() {
    let dir = tempdir("det");
    let data = generate_data(&dir);
    let (live_a, live_b) = (dir.join("live_a"), dir.join("live_b"));
    expect_success(&live_align(&data, &live_a, &dir.join("a.json"), &[], None));
    expect_success(&live_align(&data, &live_b, &dir.join("b.json"), &[], None));

    let a = parse_file(&live_a.join("live.trace.json"));
    let b = parse_file(&live_b.join("live.trace.json"));
    assert_eq!(a.counters, b.counters, "same-seed counters must match");
    assert_eq!(a.samples.len(), b.samples.len());
    for (sa, sb) in a.samples.iter().zip(&b.samples) {
        // `seconds` is wall clock and the heap/RSS gauges are measured
        // (not computed), so both are nondeterministic; the tick schedule
        // and every *deterministic* sampled table must be identical.
        assert_eq!(
            sa.deterministic_view(),
            sb.deterministic_view(),
            "sample at tick {} diverged between same-seed runs",
            sa.tick
        );
    }
    // The binary runs under the instrumented allocator, so the measured
    // gauges must actually be there (stripped above, asserted here): live
    // heap everywhere, RSS wherever the OS exposes it.
    let last = a.samples.last().expect("ring is non-empty");
    assert!(
        last.gauge("heap.live").is_some_and(|v| v > 0.0),
        "instrumented run must sample heap.live"
    );
    if cfg!(target_os = "linux") {
        assert!(
            last.gauge("mem.rss").is_some_and(|v| v > 0.0),
            "linux runs must sample process RSS"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_mid_snapshot_leaves_a_parseable_snapshot_behind() {
    let dir = tempdir("crash");
    let data = generate_data(&dir);
    // `partial` tears the TEMP file then panics; `panic` dies before any
    // write. In both cases the final path only ever transitions between
    // complete documents (atomic rename), so whatever survives the crash
    // must parse — that is the durability contract `trace tail` leans on.
    for (tag, mode) in [
        ("partial", "live.write=partial@2"),
        ("panic", "live.write=panic@2"),
    ] {
        let live = dir.join(format!("live_{tag}"));
        let out = live_align(
            &data,
            &live,
            &dir.join(format!("{tag}.json")),
            &[],
            Some(("LARGEEA_FAILPOINTS", mode)),
        );
        assert!(
            !out.status.success(),
            "{mode} should crash the run:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        let snapshot = live.join("live.trace.json");
        assert!(
            snapshot.exists(),
            "{mode}: the snapshot from before the crash must remain"
        );
        parse_file(&snapshot); // must be a complete document
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mem_budget_without_spill_dir_announces_its_tempdir_in_the_trace() {
    let dir = tempdir("autospill");
    let data = generate_data(&dir);
    let trace_out = dir.join("run.json");
    let out = bin()
        .args(["align", "--data"])
        .arg(&data)
        .args(["--model", "gcn", "--k", "2", "--epochs", "8", "--dim", "16"])
        .args(["--mem-budget", "1M"])
        .arg("--trace-out")
        .arg(&trace_out)
        .output()
        .unwrap();
    expect_success(&out);

    let trace = parse_file(&trace_out);
    let pipeline = trace
        .spans
        .iter()
        .find(|s| s.name == "pipeline")
        .expect("pipeline span");
    let spill_dir = pipeline
        .fields
        .iter()
        .find(|(k, _)| k == "spill.dir")
        .map(|(_, v)| format!("{v:?}"))
        .expect("--mem-budget without --spill-dir must announce spill.dir");
    assert!(
        spill_dir.contains("largeea_spill_"),
        "auto-picked dir should be the pid-tagged tempdir, got {spill_dir}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
