//! Determinism under parallelism: every kernel that runs on the pool must
//! produce bit-identical output for *any* thread count. This is the
//! contract that makes `LARGEEA_THREADS` a pure performance knob — see
//! DESIGN.md §S0.6.
//!
//! Each property builds two explicit pools (width 1 and width 4 — the
//! pairing the issue tracker calls out for `LARGEEA_THREADS=1` vs `=4`,
//! here pinned per-call so the test cannot race on process-global env
//! state) plus an oddball width 3, runs the same kernel on each, and
//! asserts exact equality — `==` on `f32`/`f64`, no tolerance.

use largeea::common::check::{for_each_case, unicode_string};
use largeea::common::pool::Pool;
use largeea::common::rng::Rng;
use largeea::sim::{topk_search_in, Metric};
use largeea::tensor::{Matrix, SparseMatrix};
use largeea::text::batch::{
    jaccard_similarities_in, levenshtein_similarities_in, minhash_signatures_in,
};
use largeea::text::{HashEncoder, MinHasher};

fn pools() -> Vec<Pool> {
    vec![Pool::new(1), Pool::new(3), Pool::new(4)]
}

fn random_matrix(rng: &mut Rng, max_rows: usize, max_cols: usize) -> Matrix {
    let rows = rng.gen_range(1..=max_rows);
    let cols = rng.gen_range(1..=max_cols);
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-4.0f32..4.0))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn random_sparse(rng: &mut Rng, rows: usize, cols: usize) -> SparseMatrix {
    let nnz = rng.gen_range(0..rows * cols);
    let coo = (0..nnz)
        .map(|_| {
            (
                rng.gen_range(0..rows as u32),
                rng.gen_range(0..cols as u32),
                rng.gen_range(-2.0f32..2.0),
            )
        })
        .collect();
    SparseMatrix::from_coo(rows, cols, coo)
}

fn random_names(rng: &mut Rng, max_n: usize) -> Vec<String> {
    let n = rng.gen_range(1..=max_n);
    (0..n).map(|_| unicode_string(rng, 0, 24)).collect()
}

#[test]
fn matmul_identical_across_thread_counts() {
    for_each_case(0x9a11_0001, 24, |rng| {
        let a = random_matrix(rng, 40, 20);
        let n = rng.gen_range(1..=30);
        let b = Matrix::from_vec(
            a.cols(),
            n,
            (0..a.cols() * n)
                .map(|_| rng.gen_range(-4.0f32..4.0))
                .collect(),
        );
        let reference = a.matmul_in(&b, &Pool::new(1));
        for pool in pools() {
            let got = a.matmul_in(&b, &pool);
            assert_eq!(
                reference.as_slice(),
                got.as_slice(),
                "matmul diverged at width {}",
                pool.threads()
            );
        }
    });
}

#[test]
fn spmm_identical_across_thread_counts() {
    for_each_case(0x9a11_0002, 24, |rng| {
        let rows = rng.gen_range(1..48);
        let inner = rng.gen_range(1..32);
        let sparse = random_sparse(rng, rows, inner);
        let n = rng.gen_range(1..=24);
        let dense = Matrix::from_vec(
            inner,
            n,
            (0..inner * n)
                .map(|_| rng.gen_range(-4.0f32..4.0))
                .collect(),
        );
        let reference = sparse.spmm_in(&dense, &Pool::new(1));
        for pool in pools() {
            let got = sparse.spmm_in(&dense, &pool);
            assert_eq!(
                reference.as_slice(),
                got.as_slice(),
                "spmm diverged at width {}",
                pool.threads()
            );
        }
    });
}

#[test]
fn topk_identical_across_thread_counts() {
    for_each_case(0x9a11_0003, 16, |rng| {
        let dim = rng.gen_range(1..12);
        let q_rows = rng.gen_range(1..80);
        let b_rows = rng.gen_range(1..60);
        let queries = Matrix::from_vec(
            q_rows,
            dim,
            (0..q_rows * dim)
                .map(|_| rng.gen_range(-4.0f32..4.0))
                .collect(),
        );
        let base = Matrix::from_vec(
            b_rows,
            dim,
            (0..b_rows * dim)
                .map(|_| rng.gen_range(-4.0f32..4.0))
                .collect(),
        );
        let k = rng.gen_range(1..=8);
        for metric in [Metric::Manhattan, Metric::InnerProduct] {
            let reference = topk_search_in(&queries, &base, k, metric, &Pool::new(1));
            for pool in pools() {
                let got = topk_search_in(&queries, &base, k, metric, &pool);
                assert_eq!(reference, got, "top-k diverged at width {}", pool.threads());
            }
        }
    });
}

#[test]
fn string_sim_identical_across_thread_counts() {
    for_each_case(0x9a11_0004, 12, |rng| {
        let left = random_names(rng, 96);
        let right = random_names(rng, 96);
        let pairs: Vec<(String, String)> = left
            .iter()
            .zip(right.iter().cycle())
            .map(|(a, b)| (a.clone(), b.clone()))
            .collect();
        let hasher = MinHasher::new(32, rng.next_u64());
        let lev1 = levenshtein_similarities_in(&pairs, &Pool::new(1));
        let jac1 = jaccard_similarities_in(&pairs, 2, &Pool::new(1));
        let sig1 = minhash_signatures_in(&hasher, &left, 3, &Pool::new(1));
        for pool in pools() {
            assert_eq!(lev1, levenshtein_similarities_in(&pairs, &pool));
            assert_eq!(jac1, jaccard_similarities_in(&pairs, 2, &pool));
            assert_eq!(sig1, minhash_signatures_in(&hasher, &left, 3, &pool));
        }
    });
}

#[test]
fn hash_encoder_identical_across_thread_counts() {
    for_each_case(0x9a11_0005, 12, |rng| {
        let names = random_names(rng, 200);
        let enc = HashEncoder::new(32, rng.next_u64());
        let reference = enc.encode_batch_in(&names, &Pool::new(1));
        for pool in pools() {
            let got = enc.encode_batch_in(&names, &pool);
            assert_eq!(
                reference.as_slice(),
                got.as_slice(),
                "hash encoder diverged at width {}",
                pool.threads()
            );
        }
    });
}
