//! Property-based tests for the partitioning substrate.

use largeea::partition::{
    edge_cut, metis_cps, partition_kway, vps, CpsConfig, PartGraph, PartitionConfig,
};
use largeea::kg::{EntityId, KgPair, KnowledgeGraph};
use proptest::prelude::*;

/// Strategy: a random undirected graph as an edge list over `n` vertices.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (10usize..120).prop_flat_map(|n| {
        let edges = prop::collection::vec(
            (0..n as u32, 0..n as u32, 0.1f64..10.0),
            n..(4 * n),
        );
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition_is_a_total_cover((n, edges) in graph_strategy(), k in 1usize..8) {
        let g = PartGraph::from_edges(n, edges);
        let p = partition_kway(&g, &PartitionConfig::new(k));
        // every vertex assigned, every id in range
        prop_assert_eq!(p.assignment.len(), n);
        prop_assert!(p.assignment.iter().all(|&a| (a as usize) < k));
    }

    #[test]
    fn partition_balance_is_bounded((n, edges) in graph_strategy(), k in 2usize..6) {
        prop_assume!(n >= 4 * k);
        let g = PartGraph::from_edges(n, edges);
        let p = partition_kway(&g, &PartitionConfig::new(k));
        // multilevel partitioning with tolerance 1.05 plus projection slack:
        // assert a loose but meaningful bound
        prop_assert!(
            p.balance(&g) <= 2.0,
            "balance {} too poor for n={} k={}", p.balance(&g), n, k
        );
    }

    #[test]
    fn edge_cut_never_exceeds_total_weight((n, edges) in graph_strategy(), k in 1usize..6) {
        let g = PartGraph::from_edges(n, edges.clone());
        let p = partition_kway(&g, &PartitionConfig::new(k));
        let cut = edge_cut(&g, &p.assignment);
        prop_assert!(cut >= 0.0);
        prop_assert!(cut <= g.total_ewgt() + 1e-9);
        if k == 1 {
            prop_assert_eq!(cut, 0.0);
        }
    }

    #[test]
    fn refined_cut_no_worse_than_unrefined_projection(
        (n, edges) in graph_strategy(),
        seed in 0u64..1000,
    ) {
        // determinism: same seed → same assignment
        let g = PartGraph::from_edges(n, edges);
        let cfg = PartitionConfig::new(3).with_seed(seed);
        let a = partition_kway(&g, &cfg);
        let b = partition_kway(&g, &cfg);
        prop_assert_eq!(a.assignment, b.assignment);
    }
}

/// Builds a KG pair of `c` communities with `per` entities each.
fn community_pair(c: usize, per: usize, seed: u64) -> KgPair {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let total = c * per;
    let mut s = KnowledgeGraph::new("EN");
    let mut t = KnowledgeGraph::new("FR");
    for i in 0..total {
        s.add_entity(&format!("s{i}"));
        t.add_entity(&format!("t{i}"));
    }
    for kg_idx in 0..2 {
        for ci in 0..c {
            let base = ci * per;
            for i in 0..per {
                for _ in 0..3 {
                    let j = rng.gen_range(0..per);
                    if i == j {
                        continue;
                    }
                    let (h, tl) = (base + i, base + j);
                    if kg_idx == 0 {
                        s.add_triple_by_name(&format!("s{h}"), "r", &format!("s{tl}"));
                    } else {
                        t.add_triple_by_name(&format!("t{h}"), "r", &format!("t{tl}"));
                    }
                }
            }
        }
    }
    let alignment = (0..total as u32).map(|i| (EntityId(i), EntityId(i))).collect();
    KgPair::new(s, t, alignment)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cps_beats_vps_on_test_retention(seed in 0u64..500) {
        let pair = community_pair(3, 40, seed);
        let seeds = pair.split_seeds(0.2, seed);
        let cps = metis_cps(&pair, &seeds, &CpsConfig::new(3).with_seed(seed));
        let v = vps(&pair, &seeds, 3, seed);
        let (rc, rv) = (cps.retention(&seeds), v.retention(&seeds));
        // VPS keeps all training seeds by construction
        prop_assert_eq!(rv.train, 1.0);
        // on community graphs CPS must keep clearly more test pairs together
        prop_assert!(
            rc.test >= rv.test,
            "cps test retention {} < vps {}", rc.test, rv.test
        );
    }

    #[test]
    fn batches_partition_the_entity_sets(seed in 0u64..500, k in 2usize..5) {
        let pair = community_pair(2, 30, seed);
        let seeds = pair.split_seeds(0.3, seed);
        let mb = metis_cps(&pair, &seeds, &CpsConfig::new(k).with_seed(seed));
        let ns: usize = mb.batches.iter().map(|b| b.source_entities.len()).sum();
        let nt: usize = mb.batches.iter().map(|b| b.target_entities.len()).sum();
        prop_assert_eq!(ns, pair.source.num_entities());
        prop_assert_eq!(nt, pair.target.num_entities());
        // disjointness: every entity appears in exactly one batch
        prop_assert!(mb.source_membership.iter().all(|m| m.len() == 1));
        prop_assert!(mb.target_membership.iter().all(|m| m.len() == 1));
    }

    #[test]
    fn overlap_monotonically_recovers_retention(seed in 0u64..200) {
        let pair = community_pair(3, 25, seed);
        let seeds = pair.split_seeds(0.2, seed);
        let base = metis_cps(&pair, &seeds, &CpsConfig::new(3).with_seed(seed));
        let mut last = base.retention(&seeds).total;
        for d_ov in 2..=3 {
            let ov = base.overlapped(&pair, &seeds, d_ov);
            let r = ov.retention(&seeds).total;
            prop_assert!(r >= last - 1e-12, "retention dropped at d_ov={d_ov}");
            last = r;
        }
    }
}
