//! Property-based tests for the partitioning substrate.
//!
//! Randomized inputs come from `largeea::common::check::for_each_case`;
//! each test's leading seed constant pins its input stream (a failure
//! prints the case seed to replay).

use largeea::common::check::for_each_case;
use largeea::common::rng::Rng;
use largeea::kg::{EntityId, KgPair, KnowledgeGraph};
use largeea::partition::{
    edge_cut, metis_cps, partition_kway, vps, CpsConfig, PartGraph, PartitionConfig,
};

/// A random undirected graph as an edge list over `n` vertices
/// (10–119 vertices, `n..4n` weighted edges).
fn random_graph(rng: &mut Rng) -> (usize, Vec<(u32, u32, f64)>) {
    let n = rng.gen_range(10..120usize);
    let m = rng.gen_range(n..4 * n);
    let edges = (0..m)
        .map(|_| {
            (
                rng.gen_range(0..n as u32),
                rng.gen_range(0..n as u32),
                rng.gen_range(0.1f64..10.0),
            )
        })
        .collect();
    (n, edges)
}

#[test]
fn partition_is_a_total_cover() {
    for_each_case(0x9A701, 48, |rng| {
        let (n, edges) = random_graph(rng);
        let k = rng.gen_range(1..8usize);
        let g = PartGraph::from_edges(n, edges);
        let p = partition_kway(&g, &PartitionConfig::new(k));
        // every vertex assigned, every id in range
        assert_eq!(p.assignment.len(), n);
        assert!(p.assignment.iter().all(|&a| (a as usize) < k));
    });
}

#[test]
fn partition_balance_is_bounded() {
    for_each_case(0x9A702, 48, |rng| {
        let (n, edges) = random_graph(rng);
        let k = rng.gen_range(2..6usize);
        if n < 4 * k {
            return; // the property only speaks about non-degenerate sizes
        }
        let g = PartGraph::from_edges(n, edges);
        let p = partition_kway(&g, &PartitionConfig::new(k));
        // multilevel partitioning with tolerance 1.05 plus projection slack:
        // assert a loose but meaningful bound
        assert!(
            p.balance(&g) <= 2.0,
            "balance {} too poor for n={} k={}",
            p.balance(&g),
            n,
            k
        );
    });
}

#[test]
fn edge_cut_never_exceeds_total_weight() {
    for_each_case(0x9A703, 48, |rng| {
        let (n, edges) = random_graph(rng);
        let k = rng.gen_range(1..6usize);
        let g = PartGraph::from_edges(n, edges);
        let p = partition_kway(&g, &PartitionConfig::new(k));
        let cut = edge_cut(&g, &p.assignment);
        assert!(cut >= 0.0);
        assert!(cut <= g.total_ewgt() + 1e-9);
        if k == 1 {
            assert_eq!(cut, 0.0);
        }
    });
}

#[test]
fn same_seed_same_assignment() {
    for_each_case(0x9A704, 48, |rng| {
        let (n, edges) = random_graph(rng);
        let seed = rng.gen_range(0..1000u64);
        // determinism: same seed → same assignment
        let g = PartGraph::from_edges(n, edges);
        let cfg = PartitionConfig::new(3).with_seed(seed);
        let a = partition_kway(&g, &cfg);
        let b = partition_kway(&g, &cfg);
        assert_eq!(a.assignment, b.assignment);
    });
}

/// Builds a KG pair of `c` communities with `per` entities each.
fn community_pair(c: usize, per: usize, rng: &mut Rng) -> KgPair {
    let total = c * per;
    let mut s = KnowledgeGraph::new("EN");
    let mut t = KnowledgeGraph::new("FR");
    for i in 0..total {
        s.add_entity(&format!("s{i}"));
        t.add_entity(&format!("t{i}"));
    }
    for kg_idx in 0..2 {
        for ci in 0..c {
            let base = ci * per;
            for i in 0..per {
                for _ in 0..3 {
                    let j = rng.gen_range(0..per);
                    if i == j {
                        continue;
                    }
                    let (h, tl) = (base + i, base + j);
                    if kg_idx == 0 {
                        s.add_triple_by_name(&format!("s{h}"), "r", &format!("s{tl}"));
                    } else {
                        t.add_triple_by_name(&format!("t{h}"), "r", &format!("t{tl}"));
                    }
                }
            }
        }
    }
    let alignment = (0..total as u32)
        .map(|i| (EntityId(i), EntityId(i)))
        .collect();
    KgPair::new(s, t, alignment)
}

#[test]
fn cps_beats_vps_on_test_retention() {
    for_each_case(0x9A705, 12, |rng| {
        let seed = rng.gen_range(0..500u64);
        let pair = community_pair(3, 40, rng);
        let seeds = pair.split_seeds(0.2, seed);
        let cps = metis_cps(&pair, &seeds, &CpsConfig::new(3).with_seed(seed));
        let v = vps(&pair, &seeds, 3, seed);
        let (rc, rv) = (cps.retention(&seeds), v.retention(&seeds));
        // VPS keeps all training seeds by construction
        assert_eq!(rv.train, 1.0);
        // on community graphs CPS must keep clearly more test pairs together
        assert!(
            rc.test >= rv.test,
            "cps test retention {} < vps {}",
            rc.test,
            rv.test
        );
    });
}

#[test]
fn batches_partition_the_entity_sets() {
    for_each_case(0x9A706, 12, |rng| {
        let seed = rng.gen_range(0..500u64);
        let k = rng.gen_range(2..5usize);
        let pair = community_pair(2, 30, rng);
        let seeds = pair.split_seeds(0.3, seed);
        let mb = metis_cps(&pair, &seeds, &CpsConfig::new(k).with_seed(seed));
        let ns: usize = mb.batches.iter().map(|b| b.source_entities.len()).sum();
        let nt: usize = mb.batches.iter().map(|b| b.target_entities.len()).sum();
        assert_eq!(ns, pair.source.num_entities());
        assert_eq!(nt, pair.target.num_entities());
        // disjointness: every entity appears in exactly one batch
        assert!(mb.source_membership.iter().all(|m| m.len() == 1));
        assert!(mb.target_membership.iter().all(|m| m.len() == 1));
    });
}

#[test]
fn overlap_monotonically_recovers_retention() {
    for_each_case(0x9A707, 12, |rng| {
        let seed = rng.gen_range(0..200u64);
        let pair = community_pair(3, 25, rng);
        let seeds = pair.split_seeds(0.2, seed);
        let base = metis_cps(&pair, &seeds, &CpsConfig::new(3).with_seed(seed));
        let mut last = base.retention(&seeds).total;
        for d_ov in 2..=3 {
            let ov = base.overlapped(&pair, &seeds, d_ov);
            let r = ov.retention(&seeds).total;
            assert!(r >= last - 1e-12, "retention dropped at d_ov={d_ov}");
            last = r;
        }
    });
}
