//! Retry determinism (DESIGN.md §S0.12): the backoff executor's virtual
//! clock and seeded jitter make a faulted run as reproducible as a clean
//! one. Same seed + same `transient@n` schedule ⇒ the same trace — the
//! same span tree, the same `retry.attempts`/`retry.backoff_ticks`
//! counters, byte for byte — at thread widths 1, 2 and 4, and across
//! reruns at the same width.
//!
//! The pool is process-global (`LARGEEA_THREADS`, read once), so each
//! width runs the real CLI binary as a subprocess with its own
//! environment — the same harness a user's shell would be.
//!
//! Byte-identity is asserted after scrubbing the trace's *measurement*
//! fields — quantities that describe the machine doing the work rather
//! than the work itself, and that legitimately vary run-to-run:
//! wall-clock `seconds`, the declared pool width (`threads` span fields),
//! and instrumented-allocator readings (`alloc.*` span fields, `heap.*`
//! gauges; allocator totals shift with std's per-process hasher seeds).
//! Everything else — span structure, result fields, every counter
//! including `retry.*` — must match exactly.

use largeea::common::json::ToJson;
use largeea::common::obs::{Trace, TraceSpan};
use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_largeea"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("largeea_rdet_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Zeroes wall-clock and drops measurement-only fields (see module docs).
fn canonical(mut t: Trace) -> String {
    fn scrub(s: &mut TraceSpan) {
        s.seconds = 0.0;
        s.fields
            .retain(|(k, _)| k != "threads" && !k.starts_with("alloc."));
        for c in &mut s.children {
            scrub(c);
        }
    }
    for s in &mut t.spans {
        scrub(s);
    }
    t.gauges.retain(|(k, _)| !k.starts_with("heap."));
    t.to_json_string()
}

#[test]
fn faulted_traces_are_byte_identical_across_widths_and_reruns() {
    let dir = tempdir("sweep");
    let data = dir.join("data");
    let out = bin()
        .args([
            "generate",
            "--preset",
            "ids15k-en-fr",
            "--scale",
            "0.01",
            "--out",
        ])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success());

    // (tag, width): widths 1/2/4, plus a second width-1 run for rerun
    // determinism. Fixed transient schedule: the first two `ckpt.sim`
    // writes fail, the site-level retry absorbs both.
    let runs = [("w1", "1"), ("w1_again", "1"), ("w2", "2"), ("w4", "4")];
    let mut traces = Vec::new();
    for (tag, width) in runs {
        let trace_path = dir.join(format!("{tag}.trace.json"));
        let out = bin()
            .args(["align", "--data"])
            .arg(&data)
            .args(["--model", "gcn", "--k", "2", "--epochs", "5", "--dim", "16"])
            .arg("--checkpoint-dir")
            .arg(dir.join(format!("ckpt_{tag}")))
            .arg("--trace-out")
            .arg(&trace_path)
            .env("LARGEEA_THREADS", width)
            .env("LARGEEA_FAILPOINTS", "ckpt.sim=transient@2")
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "[{tag}] transient@2 must be absorbed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(&trace_path).unwrap();
        traces.push((tag, Trace::parse(&text).unwrap()));
    }

    // the fault left deterministic retry evidence in every trace
    for (tag, t) in &traces {
        assert_eq!(t.counter("retry.attempts"), 2, "[{tag}]");
        assert!(t.counter("retry.backoff_ticks") > 0, "[{tag}]");
        assert_eq!(t.counter("retry.gave_up"), 0, "[{tag}]");
    }

    // byte-identical canonical traces: rerun and every width
    let reference = canonical(traces[0].1.clone());
    for (tag, t) in traces.iter().skip(1) {
        assert_eq!(
            reference,
            canonical(t.clone()),
            "[{tag}] trace diverged from the width-1 reference"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
