//! Property-based tests for the similarity-search substrate.

use largeea::sim::{segmented_topk, topk_search, Metric, SparseSimMatrix};
use largeea::tensor::Matrix;
use proptest::prelude::*;

fn matrix_strategy(max_rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows).prop_flat_map(move |rows| {
        prop::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    })
}

/// Brute-force top-k used as the oracle.
fn brute_topk(q: &Matrix, base: &Matrix, k: usize, metric: Metric) -> Vec<Vec<(u32, f32)>> {
    (0..q.rows())
        .map(|i| {
            let mut scored: Vec<(u32, f32)> = (0..base.rows())
                .map(|j| (j as u32, metric.similarity(q.row(i), base.row(j))))
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            scored.truncate(k);
            scored
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn topk_matches_brute_force(
        q in matrix_strategy(12, 4),
        base in matrix_strategy(20, 4),
        k in 1usize..6,
    ) {
        for metric in [Metric::Manhattan, Metric::InnerProduct] {
            let fast = topk_search(&q, &base, k, metric);
            let oracle = brute_topk(&q, &base, k, metric);
            prop_assert_eq!(&fast, &oracle);
        }
    }

    #[test]
    fn segmented_equals_plain(
        q in matrix_strategy(15, 3),
        base in matrix_strategy(25, 3),
        k in 1usize..5,
        segments in 1usize..6,
    ) {
        let plain = topk_search(&q, &base, k, Metric::Manhattan);
        let seg = segmented_topk(&q, &base, k, Metric::Manhattan, segments);
        prop_assert_eq!(plain, seg);
    }
}

fn sparse_strategy(rows: usize, cols: usize) -> impl Strategy<Value = SparseSimMatrix> {
    prop::collection::vec((0..rows, 0..cols as u32, -5.0f32..5.0), 0..rows * 4).prop_map(
        move |entries| {
            let mut m = SparseSimMatrix::new(rows, cols);
            for (r, c, s) in entries {
                m.insert(r, c, s);
            }
            m
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_add_is_commutative(a in sparse_strategy(8, 8), b in sparse_strategy(8, 8)) {
        let ab = a.add(&b);
        let ba = b.add(&a);
        for r in 0..8 {
            for (c, s) in ab.row(r) {
                let other = ba.get(r, *c).expect("entry present both ways");
                prop_assert!((s - other).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn sparse_add_identity_is_noop(a in sparse_strategy(6, 6)) {
        let zero = SparseSimMatrix::new(6, 6);
        prop_assert_eq!(a.add(&zero), a);
    }

    #[test]
    fn truncate_topk_keeps_highest(a in sparse_strategy(6, 12), k in 1usize..4) {
        let mut t = a.clone();
        t.truncate_topk(k);
        for r in 0..6 {
            prop_assert!(t.row(r).len() <= k);
            // every kept entry must be >= every dropped entry
            let kept_min = t.row(r).iter().map(|&(_, s)| s).fold(f32::INFINITY, f32::min);
            for &(c, s) in a.row(r) {
                if t.get(r, c).is_none() && t.row(r).len() == k {
                    prop_assert!(s <= kept_min + 1e-6);
                }
            }
        }
    }

    #[test]
    fn mutual_top1_pairs_are_mutual(a in sparse_strategy(8, 8)) {
        for (r, c) in a.mutual_top1() {
            prop_assert_eq!(a.best(r as usize).expect("row has entries").0, c);
            // no other row may point at c with a higher score
            let score = a.get(r as usize, c).unwrap();
            for other in 0..8 {
                if other != r as usize {
                    if let Some(s) = a.get(other, c) {
                        prop_assert!(s <= score + 1e-6);
                    }
                }
            }
        }
    }

    #[test]
    fn mutual_top1_is_one_to_one(a in sparse_strategy(10, 10)) {
        let pairs = a.mutual_top1();
        let mut rows: Vec<u32> = pairs.iter().map(|&(r, _)| r).collect();
        let mut cols: Vec<u32> = pairs.iter().map(|&(_, c)| c).collect();
        rows.sort_unstable();
        cols.sort_unstable();
        let (rl, cl) = (rows.len(), cols.len());
        rows.dedup();
        cols.dedup();
        prop_assert_eq!(rows.len(), rl);
        prop_assert_eq!(cols.len(), cl);
    }

    #[test]
    fn global_normalization_preserves_ranking(a in sparse_strategy(6, 8)) {
        let mut n = a.clone();
        n.normalize_global_minmax();
        for r in 0..6 {
            if let (Some(ba), Some(bn)) = (a.best(r), n.best(r)) {
                prop_assert_eq!(ba.0, bn.0, "row {} best changed", r);
            }
            for (c, s) in n.row(r) {
                prop_assert!((0.0..=1.0).contains(s), "score {} out of range", s);
                let _ = c;
            }
        }
    }
}
