//! Property-based tests for the similarity-search substrate.

use largeea::common::check::for_each_case;
use largeea::common::rng::Rng;
use largeea::sim::{segmented_topk, topk_search, Metric, SparseSimMatrix};
use largeea::tensor::Matrix;

fn random_matrix(rng: &mut Rng, max_rows: usize, cols: usize) -> Matrix {
    let rows = rng.gen_range(1..=max_rows);
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-10.0f32..10.0))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Brute-force top-k used as the oracle.
fn brute_topk(q: &Matrix, base: &Matrix, k: usize, metric: Metric) -> Vec<Vec<(u32, f32)>> {
    (0..q.rows())
        .map(|i| {
            let mut scored: Vec<(u32, f32)> = (0..base.rows())
                .map(|j| (j as u32, metric.similarity(q.row(i), base.row(j))))
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            scored.truncate(k);
            scored
        })
        .collect()
}

#[test]
fn topk_matches_brute_force() {
    for_each_case(0x5101, 40, |rng| {
        let q = random_matrix(rng, 12, 4);
        let base = random_matrix(rng, 20, 4);
        let k = rng.gen_range(1..6usize);
        for metric in [Metric::Manhattan, Metric::InnerProduct] {
            let fast = topk_search(&q, &base, k, metric);
            let oracle = brute_topk(&q, &base, k, metric);
            assert_eq!(&fast, &oracle);
        }
    });
}

#[test]
fn segmented_equals_plain() {
    for_each_case(0x5102, 40, |rng| {
        let q = random_matrix(rng, 15, 3);
        let base = random_matrix(rng, 25, 3);
        let k = rng.gen_range(1..5usize);
        let segments = rng.gen_range(1..6usize);
        let plain = topk_search(&q, &base, k, Metric::Manhattan);
        let seg = segmented_topk(&q, &base, k, Metric::Manhattan, segments);
        assert_eq!(plain, seg);
    });
}

fn random_sparse(rng: &mut Rng, rows: usize, cols: usize) -> SparseSimMatrix {
    let entries = rng.gen_range(0..rows * 4);
    let mut m = SparseSimMatrix::new(rows, cols);
    for _ in 0..entries {
        m.insert(
            rng.gen_range(0..rows),
            rng.gen_range(0..cols as u32),
            rng.gen_range(-5.0f32..5.0),
        );
    }
    m
}

#[test]
fn sparse_add_is_commutative() {
    for_each_case(0x5103, 64, |rng| {
        let a = random_sparse(rng, 8, 8);
        let b = random_sparse(rng, 8, 8);
        let ab = a.add(&b);
        let ba = b.add(&a);
        for r in 0..8 {
            for (c, s) in ab.row(r) {
                let other = ba.get(r, *c).expect("entry present both ways");
                assert!((s - other).abs() < 1e-5);
            }
        }
    });
}

#[test]
fn sparse_add_identity_is_noop() {
    for_each_case(0x5104, 64, |rng| {
        let a = random_sparse(rng, 6, 6);
        let zero = SparseSimMatrix::new(6, 6);
        assert_eq!(a.add(&zero), a);
    });
}

#[test]
fn truncate_topk_keeps_highest() {
    for_each_case(0x5105, 64, |rng| {
        let a = random_sparse(rng, 6, 12);
        let k = rng.gen_range(1..4usize);
        let mut t = a.clone();
        t.truncate_topk(k);
        for r in 0..6 {
            assert!(t.row(r).len() <= k);
            // every kept entry must be >= every dropped entry
            let kept_min = t
                .row(r)
                .iter()
                .map(|&(_, s)| s)
                .fold(f32::INFINITY, f32::min);
            for &(c, s) in a.row(r) {
                if t.get(r, c).is_none() && t.row(r).len() == k {
                    assert!(s <= kept_min + 1e-6);
                }
            }
        }
    });
}

#[test]
fn mutual_top1_pairs_are_mutual() {
    for_each_case(0x5106, 64, |rng| {
        let a = random_sparse(rng, 8, 8);
        for (r, c) in a.mutual_top1() {
            assert_eq!(a.best(r as usize).expect("row has entries").0, c);
            // no other row may point at c with a higher score
            let score = a.get(r as usize, c).unwrap();
            for other in 0..8 {
                if other != r as usize {
                    if let Some(s) = a.get(other, c) {
                        assert!(s <= score + 1e-6);
                    }
                }
            }
        }
    });
}

#[test]
fn mutual_top1_is_one_to_one() {
    for_each_case(0x5107, 64, |rng| {
        let a = random_sparse(rng, 10, 10);
        let pairs = a.mutual_top1();
        let mut rows: Vec<u32> = pairs.iter().map(|&(r, _)| r).collect();
        let mut cols: Vec<u32> = pairs.iter().map(|&(_, c)| c).collect();
        rows.sort_unstable();
        cols.sort_unstable();
        let (rl, cl) = (rows.len(), cols.len());
        rows.dedup();
        cols.dedup();
        assert_eq!(rows.len(), rl);
        assert_eq!(cols.len(), cl);
    });
}

#[test]
fn global_normalization_preserves_ranking() {
    for_each_case(0x5108, 64, |rng| {
        let a = random_sparse(rng, 6, 8);
        let mut n = a.clone();
        n.normalize_global_minmax();
        for r in 0..6 {
            if let (Some(ba), Some(bn)) = (a.best(r), n.best(r)) {
                assert_eq!(ba.0, bn.0, "row {} best changed", r);
            }
            for (c, s) in n.row(r) {
                assert!((0.0..=1.0).contains(s), "score {} out of range", s);
                let _ = c;
            }
        }
    });
}
