//! Out-of-core equivalence suite (DESIGN.md §S0.8): a memory-bounded run
//! that spills intermediate blocks to disk must be **bit-identical** to the
//! in-RAM reference — same fused matrix bytes, same metrics — while its
//! tracked peak stays under the budget.
//!
//! The oracle is the same determinism chain the crash suite leans on:
//! per-row-deterministic encoders (segment slices == row slices), the
//! streamed top-k visiting block pairs in exactly the in-RAM order, and
//! in-place fusion sharing the allocating path's merge kernel.
//!
//! Failpoint state is process-global, so the crash-mid-spill scenario runs
//! inside one `#[test]` (the other tests never configure failpoints).

use largeea_common::failpoint;
use largeea_common::obs::{ObsConfig, Recorder};
use largeea_core::checkpoint::Checkpoint;
use largeea_core::pipeline::{ExecOptions, LargeEa, LargeEaConfig, RunError};
use largeea_core::spill;
use largeea_core::structure_channel::StructureChannelConfig;
use largeea_data::Preset;
use largeea_models::{ModelKind, TrainConfig};
use largeea_sim::SparseSimMatrix;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn cfg() -> LargeEaConfig {
    LargeEaConfig {
        structure: StructureChannelConfig {
            k: 2,
            model: ModelKind::GcnAlign,
            train: TrainConfig {
                epochs: 6,
                dim: 16,
                ..Default::default()
            },
            top_k: 5,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("largeea_ooc_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn sim_bytes(m: &SparseSimMatrix) -> Vec<u8> {
    let mut buf = Vec::new();
    largeea_sim::io::write_sparse_sim(m, &mut buf).expect("in-memory serialize");
    buf
}

/// Bounded runs spill, stay under budget, and reproduce the in-RAM fused
/// matrix byte for byte — across several seed splits.
#[test]
fn bounded_runs_are_bit_identical_to_unbounded() {
    let pair = Preset::Ids15kEnFr.spec(0.01).generate();
    for seed_split in [5u64, 23, 71] {
        let seeds = pair.split_seeds(0.2, seed_split);
        let base = LargeEa::new(cfg()).run(&pair, &seeds);
        assert!(base.tracked_peak_bytes > 0);

        // First pass: spill with no budget, to measure the out-of-core peak.
        let rec = Recorder::new(ObsConfig::default());
        let exec = ExecOptions {
            mem_budget: None,
            spill_dir: Some(tmp(&format!("measure_{seed_split}"))),
            ..ExecOptions::default()
        };
        let spilled = LargeEa::new(cfg())
            .run_exec(&pair, &seeds, 1, &rec, None, &exec)
            .expect("unbudgeted spill run");
        assert_eq!(
            sim_bytes(&spilled.sim),
            sim_bytes(&base.sim),
            "[split {seed_split}] spilled fused matrix differs byte-wise"
        );
        assert_eq!(spilled.eval, base.eval, "[split {seed_split}]");
        let t = rec.trace();
        assert!(
            t.counter("mem.spill.writes") > 0,
            "[split {seed_split}] the spill path never wrote"
        );
        assert!(
            t.counter("mem.spill.reads") > 0,
            "[split {seed_split}] the spill path never read back"
        );
        assert!(
            !exec.spill_dir.as_ref().unwrap().exists(),
            "[split {seed_split}] spill dir must be cleaned up"
        );

        // Second pass: enforce exactly the measured peak as the budget —
        // determinism means the same run must fit, and the tracked peak of
        // a successful bounded run can never exceed its budget.
        let budget = spilled.tracked_peak_bytes;
        assert!(
            budget < base.tracked_peak_bytes,
            "[split {seed_split}] spilling should need less than in-RAM \
             ({budget} vs {})",
            base.tracked_peak_bytes
        );
        let rec = Recorder::new(ObsConfig::default());
        let exec = ExecOptions {
            mem_budget: Some(budget),
            spill_dir: Some(tmp(&format!("bounded_{seed_split}"))),
            ..ExecOptions::default()
        };
        let bounded = LargeEa::new(cfg())
            .run_exec(&pair, &seeds, 1, &rec, None, &exec)
            .expect("bounded run within its own measured peak");
        assert!(bounded.tracked_peak_bytes <= budget);
        assert_eq!(sim_bytes(&bounded.sim), sim_bytes(&base.sim));
        assert_eq!(bounded.eval, base.eval);
        assert_eq!(
            rec.trace().gauge("mem.tracked.peak_bytes"),
            Some(bounded.tracked_peak_bytes as f64),
            "report and trace must agree on the tracked peak"
        );
    }
}

/// An impossible budget fails fast with the typed error, through the spill
/// path, and still cleans up its working directory.
#[test]
fn impossible_budget_is_a_typed_error_and_cleans_up() {
    let pair = Preset::Ids15kEnFr.spec(0.01).generate();
    let seeds = pair.split_seeds(0.2, 5);
    let dir = tmp("impossible");
    let exec = ExecOptions {
        mem_budget: Some(16 << 10), // 16K: below even one embedding segment
        spill_dir: Some(dir.clone()),
        ..ExecOptions::default()
    };
    let rec = Recorder::new(ObsConfig::default());
    let err = LargeEa::new(cfg())
        .run_exec(&pair, &seeds, 1, &rec, None, &exec)
        .unwrap_err();
    match err {
        RunError::Budget(b) => {
            assert_eq!(b.budget, 16 << 10);
            assert!(b.tracked > b.budget);
        }
        other => panic!("expected a budget error, got {other}"),
    }
    assert!(!dir.exists(), "spill dir must be cleaned up on failure too");
}

/// Crash mid-spill (injected death on the 3rd spill write), then resume
/// from the durable checkpoint: bit-identical to an uninterrupted run.
/// Spill artifacts are transient working storage — losing them costs
/// recomputation from the last checkpoint stage, never correctness.
#[test]
fn crash_mid_spill_resumes_bit_identically() {
    // scenario spec must only use registered spill failpoints
    for fp in spill::FAILPOINTS {
        assert_eq!(*fp, "spill.write", "update this test for new failpoints");
    }
    let pair = Preset::Ids15kEnFr.spec(0.01).generate();
    let seeds = pair.split_seeds(0.2, 5);
    let base = LargeEa::new(cfg()).run(&pair, &seeds);

    let ckpt_dir = tmp("crash_ckpt");
    let run = |resume: bool, spill_name: &str| {
        let rec = Recorder::new(ObsConfig::default());
        let c = cfg();
        let mut ckpt = Checkpoint::open(&ckpt_dir, c.run_meta(&seeds, 1), resume, &rec)?;
        let exec = ExecOptions {
            mem_budget: None,
            spill_dir: Some(tmp(spill_name)),
            ..ExecOptions::default()
        };
        LargeEa::new(c).run_exec(&pair, &seeds, 1, &rec, Some(&mut ckpt), &exec)
    };

    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    failpoint::configure("spill.write=panic@3").expect("valid spec");
    let outcome = catch_unwind(AssertUnwindSafe(|| run(false, "crash_spill_a")));
    failpoint::clear();
    std::panic::set_hook(prev_hook);
    assert!(
        outcome.is_err(),
        "spill.write=panic@3 never fired — dead write site?"
    );

    let resumed = run(true, "crash_spill_b").expect("resume after crash mid-spill");
    assert_eq!(
        sim_bytes(&resumed.sim),
        sim_bytes(&base.sim),
        "resumed fused matrix differs"
    );
    assert_eq!(resumed.eval, base.eval, "resumed metrics differ");
    std::fs::remove_dir_all(&ckpt_dir).ok();
}

/// Acceptance workload (ISSUE 6): the DBP1M-class CI preset completes
/// under a budget well below the in-RAM peak, bit-identically.
#[test]
fn dbp1m_ci_bounded_run_fits_well_under_the_in_ram_peak() {
    let pair = Preset::Dbp1mCi.spec(1.0).generate();
    let seeds = pair.split_seeds(0.2, 5);
    let mut c = cfg();
    c.structure.k = 4;
    c.structure.train.epochs = 4;
    c.name.segments = 8;
    c.name.minhash_perms = 32;

    let base = LargeEa::new(c).run(&pair, &seeds);
    let ram_peak = base.tracked_peak_bytes;
    assert!(ram_peak > 0);

    let budget = ram_peak * 3 / 4;
    let rec = Recorder::new(ObsConfig::default());
    let exec = ExecOptions {
        mem_budget: Some(budget),
        spill_dir: Some(tmp("dbp1m_ci")),
        ..ExecOptions::default()
    };
    let bounded = LargeEa::new(c)
        .run_exec(&pair, &seeds, 1, &rec, None, &exec)
        .expect("bounded DBP1M-CI run at 3/4 of the in-RAM peak");
    assert!(
        bounded.tracked_peak_bytes <= budget,
        "peak {} exceeds budget {budget}",
        bounded.tracked_peak_bytes
    );
    assert_eq!(
        sim_bytes(&bounded.sim),
        sim_bytes(&base.sim),
        "bounded DBP1M-CI fused matrix differs byte-wise"
    );
    assert_eq!(bounded.eval, base.eval);
    let t = rec.trace();
    assert!(t.counter("mem.spill.writes") > 0);
    assert!(t.gauge("mem.spill.peak_disk_bytes").unwrap_or(0.0) > 0.0);
}
