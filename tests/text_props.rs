//! Property-based tests for the text substrate (BERT/datasketch/Levenshtein
//! substitutes).

use largeea::common::check::{for_each_case, string_from, unicode_string};
use largeea::text::jaccard::{jaccard, shingles};
use largeea::text::{
    levenshtein, levenshtein_bounded, levenshtein_similarity, normalize_name, HashEncoder,
    LshIndex, MinHasher,
};

#[test]
fn levenshtein_is_a_metric() {
    for_each_case(0x7E01, 128, |rng| {
        let a = unicode_string(rng, 0, 24);
        let b = unicode_string(rng, 0, 24);
        let c = unicode_string(rng, 0, 24);
        // identity
        assert_eq!(levenshtein(&a, &a), 0);
        // symmetry
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // triangle inequality
        assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    });
}

#[test]
fn levenshtein_bounded_by_longer_string() {
    for_each_case(0x7E02, 128, |rng| {
        let a = unicode_string(rng, 0, 24);
        let b = unicode_string(rng, 0, 24);
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        assert!(d <= la.max(lb));
        assert!(d >= la.abs_diff(lb));
        let sim = levenshtein_similarity(&a, &b);
        assert!((0.0..=1.0).contains(&sim));
    });
}

#[test]
fn bounded_levenshtein_agrees_with_exact() {
    for_each_case(0x7E03, 128, |rng| {
        let a = string_from(rng, "abcde", 0, 16);
        let b = string_from(rng, "abcde", 0, 16);
        let max_d = rng.gen_range(0..10usize);
        let exact = levenshtein(&a, &b);
        let bounded = levenshtein_bounded(&a, &b, max_d);
        if exact <= max_d {
            assert_eq!(bounded, Some(exact));
        } else {
            assert_eq!(bounded, None);
        }
    });
}

#[test]
fn normalization_is_idempotent_and_case_folded() {
    for_each_case(0x7E04, 128, |rng| {
        let raw = unicode_string(rng, 0, 32);
        let once = normalize_name(&raw);
        assert_eq!(normalize_name(&once), once.clone());
        // every *foldable* character is folded (some uppercase code points,
        // e.g. U+1D400 𝐀, have no lowercase mapping and pass through)
        assert!(once.chars().all(|c| c.to_lowercase().next() == Some(c)));
        // no double spaces, no outer whitespace
        assert!(!once.contains("  "));
        assert_eq!(once.trim(), &once);
    });
}

#[test]
fn jaccard_symmetry_and_bounds() {
    for_each_case(0x7E05, 128, |rng| {
        let a = string_from(rng, "abcdef ", 0, 20);
        let b = string_from(rng, "abcdef ", 0, 20);
        let sa = shingles(&a, 3);
        let sb = shingles(&b, 3);
        let j = jaccard(&sa, &sb);
        assert!((0.0..=1.0).contains(&j));
        assert_eq!(j, jaccard(&sb, &sa));
        assert_eq!(jaccard(&sa, &sa), 1.0);
    });
}

#[test]
fn minhash_estimate_tracks_jaccard() {
    for_each_case(0x7E06, 128, |rng| {
        let a = string_from(rng, "abcdefgh", 6, 24);
        let b = string_from(rng, "abcdefgh", 6, 24);
        let mh = MinHasher::new(256, 7);
        let (sa, sb) = (shingles(&a, 2), shingles(&b, 2));
        let truth = jaccard(&sa, &sb);
        let est = mh.estimate(&mh.signature(&sa), &mh.signature(&sb));
        // 256 permutations: standard error ≈ sqrt(j(1-j)/256) ≤ 0.032
        assert!((truth - est).abs() < 0.17, "true {truth} est {est}");
    });
}

#[test]
fn encoder_is_deterministic_and_bounded() {
    for_each_case(0x7E07, 128, |rng| {
        let name = unicode_string(rng, 0, 32);
        let enc = HashEncoder::new(64, 3);
        let a = enc.encode(&name);
        let b = enc.encode(&name);
        assert_eq!(a.clone(), b);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|x| x.is_finite()));
        // max-pooled unit token vectors: coordinates within [-1, 1]
        assert!(a.iter().all(|x| x.abs() <= 1.0 + 1e-5));
    });
}

#[test]
fn lsh_self_query_always_hits() {
    for_each_case(0x7E08, 128, |rng| {
        let name = string_from(rng, "abcdefghijklmnopqrstuvwxyz", 4, 20);
        let mh = MinHasher::new(64, 5);
        let mut idx = LshIndex::with_threshold(64, 0.5);
        let sig = mh.signature(&shingles(&name, 3));
        idx.insert(42, &sig);
        assert!(idx.candidates(&sig).contains(&42));
    });
}
