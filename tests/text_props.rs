//! Property-based tests for the text substrate (BERT/datasketch/Levenshtein
//! substitutes).

use largeea::text::jaccard::{jaccard, shingles};
use largeea::text::{
    levenshtein, levenshtein_bounded, levenshtein_similarity, normalize_name, HashEncoder,
    LshIndex, MinHasher,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn levenshtein_is_a_metric(a in ".{0,24}", b in ".{0,24}", c in ".{0,24}") {
        // identity
        prop_assert_eq!(levenshtein(&a, &a), 0);
        // symmetry
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // triangle inequality
        prop_assert!(
            levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c)
        );
    }

    #[test]
    fn levenshtein_bounded_by_longer_string(a in ".{0,24}", b in ".{0,24}") {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d <= la.max(lb));
        prop_assert!(d >= la.abs_diff(lb));
        let sim = levenshtein_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&sim));
    }

    #[test]
    fn bounded_levenshtein_agrees_with_exact(
        a in "[a-e]{0,16}",
        b in "[a-e]{0,16}",
        max_d in 0usize..10,
    ) {
        let exact = levenshtein(&a, &b);
        let bounded = levenshtein_bounded(&a, &b, max_d);
        if exact <= max_d {
            prop_assert_eq!(bounded, Some(exact));
        } else {
            prop_assert_eq!(bounded, None);
        }
    }

    #[test]
    fn normalization_is_idempotent_and_case_folded(raw in ".{0,32}") {
        let once = normalize_name(&raw);
        prop_assert_eq!(normalize_name(&once), once.clone());
        // every *foldable* character is folded (some uppercase code points,
        // e.g. U+1D400 𝐀, have no lowercase mapping and pass through)
        prop_assert!(once
            .chars()
            .all(|c| c.to_lowercase().next() == Some(c)));
        // no double spaces, no outer whitespace
        prop_assert!(!once.contains("  "));
        prop_assert_eq!(once.trim(), &once);
    }

    #[test]
    fn jaccard_symmetry_and_bounds(a in "[a-f ]{0,20}", b in "[a-f ]{0,20}") {
        let sa = shingles(&a, 3);
        let sb = shingles(&b, 3);
        let j = jaccard(&sa, &sb);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, jaccard(&sb, &sa));
        prop_assert_eq!(jaccard(&sa, &sa), 1.0);
    }

    #[test]
    fn minhash_estimate_tracks_jaccard(a in "[a-h]{6,24}", b in "[a-h]{6,24}") {
        let mh = MinHasher::new(256, 7);
        let (sa, sb) = (shingles(&a, 2), shingles(&b, 2));
        let truth = jaccard(&sa, &sb);
        let est = mh.estimate(&mh.signature(&sa), &mh.signature(&sb));
        // 256 permutations: standard error ≈ sqrt(j(1-j)/256) ≤ 0.032
        prop_assert!((truth - est).abs() < 0.17, "true {truth} est {est}");
    }

    #[test]
    fn encoder_is_deterministic_and_bounded(name in ".{0,32}") {
        let enc = HashEncoder::new(64, 3);
        let a = enc.encode(&name);
        let b = enc.encode(&name);
        prop_assert_eq!(a.clone(), b);
        prop_assert_eq!(a.len(), 64);
        prop_assert!(a.iter().all(|x| x.is_finite()));
        // max-pooled unit token vectors: coordinates within [-1, 1]
        prop_assert!(a.iter().all(|x| x.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn lsh_self_query_always_hits(name in "[a-z]{4,20}") {
        let mh = MinHasher::new(64, 5);
        let mut idx = LshIndex::with_threshold(64, 0.5);
        let sig = mh.signature(&shingles(&name, 3));
        idx.insert(42, &sig);
        prop_assert!(idx.candidates(&sig).contains(&42));
    }
}
