//! Integration tests for `largeea trace`: the analysis loop over
//! `--trace-out` files — summarize, self-diff (exactly zero deltas),
//! regression gating against a deliberately slowed stage, folded flame
//! stacks, and budget checks against a bench baseline.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_largeea"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("largeea_trace_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Generates a tiny dataset and runs one traced align into `trace_path`.
/// `slow` optionally sets the `LARGEEA_SLOW_SPAN=<span>:<millis>` test hook
/// so a chosen stage genuinely takes longer.
fn traced_align(dir: &Path, trace_path: &Path, slow: Option<&str>) {
    let data = dir.join("data");
    if !data.exists() {
        let out = bin()
            .args([
                "generate",
                "--preset",
                "ids15k-en-fr",
                "--scale",
                "0.01",
                "--out",
            ])
            .arg(&data)
            .output()
            .unwrap();
        stdout_of(&out);
    }
    let mut cmd = bin();
    cmd.args(["align", "--data"])
        .arg(&data)
        .args(["--model", "gcn", "--k", "2", "--epochs", "8", "--dim", "16"])
        .arg("--trace-out")
        .arg(trace_path);
    if let Some(spec) = slow {
        cmd.env("LARGEEA_SLOW_SPAN", spec);
    }
    stdout_of(&cmd.output().unwrap());
}

#[test]
fn summarize_prints_tree_metrics_and_throughputs() {
    let dir = tempdir("summarize");
    let trace = dir.join("run.json");
    traced_align(&dir, &trace, None);

    let out = bin()
        .arg("trace")
        .arg("summarize")
        .arg(&trace)
        .output()
        .unwrap();
    let text = stdout_of(&out);
    for needle in [
        "pipeline",
        "structure_channel",
        "epoch ×", // same-name siblings are folded
        "counters:",
        "partition.input_triples",
        "derived throughputs:",
        "train.epochs_per_sec",
        "topk.pairs_per_sec",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_of_a_trace_with_itself_is_all_zeros_and_exits_zero() {
    let dir = tempdir("selfdiff");
    let trace = dir.join("run.json");
    traced_align(&dir, &trace, None);

    let out = bin()
        .arg("trace")
        .arg("diff")
        .arg(&trace)
        .arg(&trace)
        .args(["--threshold-pct", "0"])
        .output()
        .unwrap();
    let text = stdout_of(&out);
    assert!(text.contains("OK: no span regressed"), "{text}");
    assert!(!text.contains("REGRESSION"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_catches_a_deliberately_slowed_stage() {
    let dir = tempdir("slowdiff");
    let fast = dir.join("fast.json");
    let slow = dir.join("slow.json");
    traced_align(&dir, &fast, None);
    // the test hook makes every `stns` span sleep 400ms — a genuine,
    // machine-independent regression far past any scheduler noise
    traced_align(&dir, &slow, Some("stns:400"));

    let out = bin()
        .arg("trace")
        .arg("diff")
        .arg(&fast)
        .arg(&slow)
        .args(["--threshold-pct", "10"])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "slowed stns must trip the 10% gate:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains("stns"), "{text}");

    // without a threshold the same diff is informational: exit 0
    let out = bin()
        .arg("trace")
        .arg("diff")
        .arg(&fast)
        .arg(&slow)
        .output()
        .unwrap();
    stdout_of(&out);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flame_emits_folded_stacks_with_self_micros() {
    let dir = tempdir("flame");
    let trace = dir.join("run.json");
    traced_align(&dir, &trace, None);

    let out = bin()
        .arg("trace")
        .arg("flame")
        .arg(&trace)
        .output()
        .unwrap();
    let text = stdout_of(&out);
    let mut saw_nested = false;
    for line in text.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("folded line has a value");
        value.parse::<u64>().expect("self-time is integer micros");
        saw_nested |= stack.contains(';');
    }
    assert!(saw_nested, "expected at least one nested stack:\n{text}");
    assert!(
        text.lines()
            .any(|l| l.starts_with("pipeline;structure_channel;train")),
        "{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_gates_against_handcrafted_baselines() {
    let dir = tempdir("check");
    let trace_path = dir.join("run.json");
    traced_align(&dir, &trace_path, None);

    // a generous baseline the run must satisfy: huge budgets, counters
    // copied from the run itself
    let trace_text = std::fs::read_to_string(&trace_path).unwrap();
    let counter = |name: &str| -> u64 {
        let needle = format!("\"{name}\":");
        let rest = &trace_text[trace_text.find(&needle).unwrap() + needle.len()..];
        rest[..rest.find([',', '}']).unwrap()].parse().unwrap()
    };
    let lenient = dir.join("lenient.json");
    std::fs::write(
        &lenient,
        format!(
            r#"{{"schema":"largeea-bench-baseline","version":1,"config":{{}},"repeats":1,"stages":{{"pipeline":{{"median_seconds":3600.0,"min_seconds":3600.0,"max_seconds":3600.0}}}},"counters":{{"cps.virtual_edges":{}}}}}"#,
            counter("cps.virtual_edges")
        ),
    )
    .unwrap();
    let out = bin()
        .arg("trace")
        .arg("check")
        .arg(&trace_path)
        .arg("--baseline")
        .arg(&lenient)
        .output()
        .unwrap();
    let text = stdout_of(&out);
    assert!(text.contains("OK: within"), "{text}");

    // an impossible baseline: zero time budget and a wrong counter
    let strict = dir.join("strict.json");
    std::fs::write(
        &strict,
        r#"{"schema":"largeea-bench-baseline","version":1,"config":{},"repeats":1,"stages":{"pipeline":{"median_seconds":0.0,"min_seconds":0.0,"max_seconds":0.0}},"counters":{"cps.virtual_edges":1}}"#,
    )
    .unwrap();
    let out = bin()
        .arg("trace")
        .arg("check")
        .arg(&trace_path)
        .arg("--baseline")
        .arg(&strict)
        .args(["--tolerance-pct", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FAIL"), "{text}");
    assert!(text.contains("stage pipeline"), "{text}");
    assert!(text.contains("counter cps.virtual_edges"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_errors_are_reported_not_panicked() {
    let dir = tempdir("errors");
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{not json").unwrap();

    for args in [
        vec!["trace".to_owned()],
        vec!["trace".into(), "frobnicate".into()],
        vec!["trace".into(), "summarize".into()],
        vec![
            "trace".into(),
            "summarize".into(),
            garbage.display().to_string(),
        ],
        vec![
            "trace".into(),
            "check".into(),
            garbage.display().to_string(),
        ],
    ] {
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{args:?} → {err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A handcrafted schema-v2 live snapshot: one still-open span chain, the
/// `progress.*` gauges a run maintains, and a three-sample ring with
/// spill activity — tables deliberately NOT sorted to prove the tooling
/// sorts defensively.
fn handcrafted_live_snapshot() -> String {
    concat!(
        r#"{"version":2,"#,
        r#""spans":[{"name":"pipeline","seconds":0.0,"fields":{},"children":["#,
        r#"{"name":"structure_channel","seconds":0.0,"fields":{},"children":["#,
        r#"{"name":"train","seconds":0.0,"fields":{},"children":["#,
        r#"{"name":"epoch","seconds":0.5,"fields":{},"children":[]}]}]}]}],"#,
        r#""counters":{"zeta.ops":3,"mem.spill.write_bytes":4096,"alpha.ops":1},"#,
        r#""gauges":{"progress.rounds_total":1.0,"progress.round":1.0,"#,
        r#""progress.batches_total":2.0,"progress.batch":1.0,"#,
        r#""progress.epochs_total":4.0,"mem.tracked.bytes":2048.0},"#,
        r#""histograms":{"z.h":{"count":1,"sum":0.5,"min":0.5,"max":0.5,"p50":0.5,"p95":0.5},"#,
        r#""a.h":{"count":2,"sum":1.0,"min":0.25,"max":0.75,"p50":0.25,"p95":0.75}},"#,
        r#""samples":["#,
        r#"{"tick":2,"seconds":0.1,"counters":{"mem.spill.write_bytes":1024},"gauges":{"mem.tracked.bytes":512.0},"histograms":{}},"#,
        r#"{"tick":4,"seconds":0.2,"counters":{"mem.spill.write_bytes":1024},"gauges":{"mem.tracked.bytes":2048.0},"histograms":{}},"#,
        r#"{"tick":6,"seconds":0.3,"counters":{"mem.spill.write_bytes":4096},"gauges":{"mem.tracked.bytes":2048.0},"histograms":{}}"#,
        r#"]}"#,
    )
    .to_owned()
}

#[test]
fn tail_once_renders_open_path_progress_and_sparklines() {
    let dir = tempdir("tail");
    std::fs::write(dir.join("live.trace.json"), handcrafted_live_snapshot()).unwrap();

    // a directory argument resolves to <dir>/live.trace.json
    let out = bin()
        .arg("trace")
        .arg("tail")
        .arg(&dir)
        .arg("--once")
        .output()
        .unwrap();
    let text = stdout_of(&out);
    assert!(
        text.contains("open: pipeline > structure_channel > train"),
        "{text}"
    );
    assert!(text.contains("round 1/1"), "{text}");
    assert!(text.contains("batch 1/2"), "{text}");
    assert!(text.contains("epochs 1/8"), "{text}");
    assert!(text.contains("ETA"), "{text}");
    assert!(text.contains("tick 6"), "{text}");
    assert!(text.contains("mem.spill.write_bytes"), "{text}");
    assert!(text.contains('█'), "sparkline blocks expected in {text}");

    // the explicit file path form works too
    let out = bin()
        .arg("trace")
        .arg("tail")
        .arg(dir.join("live.trace.json"))
        .arg("--once")
        .output()
        .unwrap();
    stdout_of(&out);

    // --once on a missing snapshot is a clean failure, not a hang
    let out = bin()
        .arg("trace")
        .arg("tail")
        .arg(dir.join("nope"))
        .arg("--once")
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

/// A schema-v1 snapshot (pre-live-telemetry: no `"samples"` key) of the
/// same run shape: `tail` must degrade to current gauge values — no
/// sparklines, no crash.
fn handcrafted_v1_snapshot() -> String {
    concat!(
        r#"{"version":1,"#,
        r#""spans":[{"name":"pipeline","seconds":0.0,"fields":{},"children":["#,
        r#"{"name":"train","seconds":0.0,"fields":{},"children":[]}]}],"#,
        r#""counters":{"mem.spill.write_bytes":4096},"#,
        r#""gauges":{"progress.rounds_total":1.0,"progress.round":1.0,"#,
        r#""mem.tracked.bytes":2048.0},"#,
        r#""histograms":{}}"#,
    )
    .to_owned()
}

#[test]
fn tail_degrades_gracefully_on_a_schema_v1_snapshot() {
    let dir = tempdir("tailv1");
    std::fs::write(dir.join("live.trace.json"), handcrafted_v1_snapshot()).unwrap();

    let out = bin()
        .arg("trace")
        .arg("tail")
        .arg(&dir)
        .arg("--once")
        .output()
        .unwrap();
    let text = stdout_of(&out);
    // the span/progress views need no sample ring and must still work
    assert!(text.contains("open: pipeline > train"), "{text}");
    assert!(text.contains("round 1/1"), "{text}");
    // gauges degrade to their current values in human units...
    assert!(text.contains("mem.tracked.bytes"), "{text}");
    assert!(text.contains("2.0K"), "{text}");
    // ...with no sparklines (there is no ring to draw them from)
    for block in ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'] {
        assert!(!text.contains(block), "unexpected sparkline in:\n{text}");
    }
    assert!(text.contains("0 sample(s)"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn summarize_output_is_sorted_and_byte_deterministic() {
    let dir = tempdir("sorted");
    let path = dir.join("live.trace.json");
    std::fs::write(&path, handcrafted_live_snapshot()).unwrap();

    let run = || {
        let out = bin()
            .arg("trace")
            .arg("summarize")
            .arg(&path)
            .output()
            .unwrap();
        stdout_of(&out)
    };
    let text = run();
    // golden: the metric sections print name-sorted regardless of the
    // (deliberately shuffled) on-disk order
    let expected_counters = format!(
        "counters:\n  {:<38} {:>12}\n  {:<38} {:>12}\n  {:<38} {:>12}\n",
        "alpha.ops", 1, "mem.spill.write_bytes", 4096, "zeta.ops", 3
    );
    assert!(text.contains(&expected_counters), "{text}");
    let a_h = text.find("  a.h ").expect("a.h histogram row");
    let z_h = text.find("  z.h ").expect("z.h histogram row");
    assert!(a_h < z_h, "histograms must sort by name:\n{text}");
    let mut gauge_names: Vec<&str> = text
        .lines()
        .skip_while(|l| *l != "gauges:")
        .skip(1)
        .take_while(|l| !l.is_empty())
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    let sorted = gauge_names.clone();
    gauge_names.sort_unstable();
    assert_eq!(sorted, gauge_names, "gauges must sort by name:\n{text}");
    assert!(text.contains("live samples: 3 (last tick 6)"), "{text}");
    assert_eq!(text, run(), "summarize must be byte-deterministic");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn expo_renders_prometheus_text_from_any_trace() {
    let dir = tempdir("expo");
    let path = dir.join("live.trace.json");
    std::fs::write(&path, handcrafted_live_snapshot()).unwrap();

    let out = bin().arg("trace").arg("expo").arg(&path).output().unwrap();
    let text = stdout_of(&out);
    assert!(
        text.contains("# TYPE largeea_alpha_ops_total counter\nlargeea_alpha_ops_total 1\n"),
        "{text}"
    );
    assert!(text.contains("largeea_progress_rounds_total 1.0"), "{text}");
    assert!(
        text.contains("largeea_z_h{quantile=\"0.95\"} 0.5"),
        "{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
