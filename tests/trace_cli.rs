//! Integration tests for `largeea trace`: the analysis loop over
//! `--trace-out` files — summarize, self-diff (exactly zero deltas),
//! regression gating against a deliberately slowed stage, folded flame
//! stacks, and budget checks against a bench baseline.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_largeea"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("largeea_trace_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Generates a tiny dataset and runs one traced align into `trace_path`.
/// `slow` optionally sets the `LARGEEA_SLOW_SPAN=<span>:<millis>` test hook
/// so a chosen stage genuinely takes longer.
fn traced_align(dir: &Path, trace_path: &Path, slow: Option<&str>) {
    let data = dir.join("data");
    if !data.exists() {
        let out = bin()
            .args([
                "generate",
                "--preset",
                "ids15k-en-fr",
                "--scale",
                "0.01",
                "--out",
            ])
            .arg(&data)
            .output()
            .unwrap();
        stdout_of(&out);
    }
    let mut cmd = bin();
    cmd.args(["align", "--data"])
        .arg(&data)
        .args(["--model", "gcn", "--k", "2", "--epochs", "8", "--dim", "16"])
        .arg("--trace-out")
        .arg(trace_path);
    if let Some(spec) = slow {
        cmd.env("LARGEEA_SLOW_SPAN", spec);
    }
    stdout_of(&cmd.output().unwrap());
}

#[test]
fn summarize_prints_tree_metrics_and_throughputs() {
    let dir = tempdir("summarize");
    let trace = dir.join("run.json");
    traced_align(&dir, &trace, None);

    let out = bin()
        .arg("trace")
        .arg("summarize")
        .arg(&trace)
        .output()
        .unwrap();
    let text = stdout_of(&out);
    for needle in [
        "pipeline",
        "structure_channel",
        "epoch ×", // same-name siblings are folded
        "counters:",
        "partition.input_triples",
        "derived throughputs:",
        "train.epochs_per_sec",
        "topk.pairs_per_sec",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_of_a_trace_with_itself_is_all_zeros_and_exits_zero() {
    let dir = tempdir("selfdiff");
    let trace = dir.join("run.json");
    traced_align(&dir, &trace, None);

    let out = bin()
        .arg("trace")
        .arg("diff")
        .arg(&trace)
        .arg(&trace)
        .args(["--threshold-pct", "0"])
        .output()
        .unwrap();
    let text = stdout_of(&out);
    assert!(text.contains("OK: no span regressed"), "{text}");
    assert!(!text.contains("REGRESSION"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_catches_a_deliberately_slowed_stage() {
    let dir = tempdir("slowdiff");
    let fast = dir.join("fast.json");
    let slow = dir.join("slow.json");
    traced_align(&dir, &fast, None);
    // the test hook makes every `stns` span sleep 400ms — a genuine,
    // machine-independent regression far past any scheduler noise
    traced_align(&dir, &slow, Some("stns:400"));

    let out = bin()
        .arg("trace")
        .arg("diff")
        .arg(&fast)
        .arg(&slow)
        .args(["--threshold-pct", "10"])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "slowed stns must trip the 10% gate:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains("stns"), "{text}");

    // without a threshold the same diff is informational: exit 0
    let out = bin()
        .arg("trace")
        .arg("diff")
        .arg(&fast)
        .arg(&slow)
        .output()
        .unwrap();
    stdout_of(&out);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flame_emits_folded_stacks_with_self_micros() {
    let dir = tempdir("flame");
    let trace = dir.join("run.json");
    traced_align(&dir, &trace, None);

    let out = bin()
        .arg("trace")
        .arg("flame")
        .arg(&trace)
        .output()
        .unwrap();
    let text = stdout_of(&out);
    let mut saw_nested = false;
    for line in text.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("folded line has a value");
        value.parse::<u64>().expect("self-time is integer micros");
        saw_nested |= stack.contains(';');
    }
    assert!(saw_nested, "expected at least one nested stack:\n{text}");
    assert!(
        text.lines()
            .any(|l| l.starts_with("pipeline;structure_channel;train")),
        "{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_gates_against_handcrafted_baselines() {
    let dir = tempdir("check");
    let trace_path = dir.join("run.json");
    traced_align(&dir, &trace_path, None);

    // a generous baseline the run must satisfy: huge budgets, counters
    // copied from the run itself
    let trace_text = std::fs::read_to_string(&trace_path).unwrap();
    let counter = |name: &str| -> u64 {
        let needle = format!("\"{name}\":");
        let rest = &trace_text[trace_text.find(&needle).unwrap() + needle.len()..];
        rest[..rest.find([',', '}']).unwrap()].parse().unwrap()
    };
    let lenient = dir.join("lenient.json");
    std::fs::write(
        &lenient,
        format!(
            r#"{{"schema":"largeea-bench-baseline","version":1,"config":{{}},"repeats":1,"stages":{{"pipeline":{{"median_seconds":3600.0,"min_seconds":3600.0,"max_seconds":3600.0}}}},"counters":{{"cps.virtual_edges":{}}}}}"#,
            counter("cps.virtual_edges")
        ),
    )
    .unwrap();
    let out = bin()
        .arg("trace")
        .arg("check")
        .arg(&trace_path)
        .arg("--baseline")
        .arg(&lenient)
        .output()
        .unwrap();
    let text = stdout_of(&out);
    assert!(text.contains("OK: within"), "{text}");

    // an impossible baseline: zero time budget and a wrong counter
    let strict = dir.join("strict.json");
    std::fs::write(
        &strict,
        r#"{"schema":"largeea-bench-baseline","version":1,"config":{},"repeats":1,"stages":{"pipeline":{"median_seconds":0.0,"min_seconds":0.0,"max_seconds":0.0}},"counters":{"cps.virtual_edges":1}}"#,
    )
    .unwrap();
    let out = bin()
        .arg("trace")
        .arg("check")
        .arg(&trace_path)
        .arg("--baseline")
        .arg(&strict)
        .args(["--tolerance-pct", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FAIL"), "{text}");
    assert!(text.contains("stage pipeline"), "{text}");
    assert!(text.contains("counter cps.virtual_edges"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_errors_are_reported_not_panicked() {
    let dir = tempdir("errors");
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{not json").unwrap();

    for args in [
        vec!["trace".to_owned()],
        vec!["trace".into(), "frobnicate".into()],
        vec!["trace".into(), "summarize".into()],
        vec![
            "trace".into(),
            "summarize".into(),
            garbage.display().to_string(),
        ],
        vec![
            "trace".into(),
            "check".into(),
            garbage.display().to_string(),
        ],
    ] {
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{args:?} → {err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
